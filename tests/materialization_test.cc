// Factorized (late-materialized) temporal tables:
//  * TemporalTable delta-column mechanics: At / GatherColumn / Flatten,
//    span-style AppendRow + Reserve, sort-order provenance.
//  * Fixed-plan exact-row-order equality between kEager and kFactorized
//    executors (same plan, same database), including fused selects.
//  * Randomized differential: kFactorized vs kEager vs the naive
//    matcher over DAG / Erdos-Renyi / scale-free graphs at 1, 4 and 8
//    threads — row-identical results everywhere.
//  * Bounded LRU plan cache: eviction order, hit/miss counters,
//    capacity 0 disables caching.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/graph_matcher.h"
#include "exec/temporal_table.h"
#include "graph/generators.h"
#include "opt/dps_optimizer.h"
#include "opt/explain.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

TEST(TemporalTableTest, DeltaColumnAccessAndFlatten) {
  // Base block: two columns, three rows; one delta level fanning row 0
  // out twice and row 2 once; a second level extending two of those.
  TemporalTable t(Materialization::kFactorized);
  t.AddColumn(0);
  t.AddColumn(1);
  const NodeId r0[] = {10, 20};
  const NodeId r1[] = {11, 21};
  t.AppendRow(r0, 2);
  t.AppendRow(r1, 2);
  t.AppendRow(std::vector<NodeId>{12, 22});
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.base_columns(), 2u);

  auto& d1 = t.AddDeltaColumn(2);
  d1.parent = {0, 0, 2};
  d1.value = {30, 31, 32};
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.base_columns(), 2u);
  EXPECT_EQ(t.NumColumns(), 3u);

  auto& d2 = t.AddDeltaColumn(3);
  d2.parent = {1, 2};
  d2.value = {40, 41};
  ASSERT_EQ(t.NumRows(), 2u);

  // Logical rows: (10, 20, 31, 40) and (12, 22, 32, 41).
  EXPECT_EQ(t.At(0, 0), 10u);
  EXPECT_EQ(t.At(0, 1), 20u);
  EXPECT_EQ(t.At(0, 2), 31u);
  EXPECT_EQ(t.At(0, 3), 40u);
  EXPECT_EQ(t.At(1, 0), 12u);
  EXPECT_EQ(t.At(1, 2), 32u);

  std::vector<NodeId> col;
  t.GatherColumn(0, &col);
  EXPECT_EQ(col, (std::vector<NodeId>{10, 12}));
  t.GatherColumn(2, &col);
  EXPECT_EQ(col, (std::vector<NodeId>{31, 32}));
  t.GatherColumn(3, &col);
  EXPECT_EQ(col, (std::vector<NodeId>{40, 41}));

  // ByteSize counts base ids + (parent, value) pairs.
  EXPECT_EQ(t.ByteSize(), (6 + 3 * 2 + 2 * 2) * 4ull);

  t.Flatten();
  EXPECT_TRUE(t.deltas().empty());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.base_columns(), 4u);
  EXPECT_EQ(t.raw_rows(),
            (std::vector<NodeId>{10, 20, 31, 40, 12, 22, 32, 41}));
  EXPECT_EQ(t.At(1, 3), 41u);  // flat At agrees with the gathered rows
}

TEST(TemporalTableTest, ReserveAndSortOrder) {
  TemporalTable t;
  t.AddColumn(0);
  t.Reserve(100, 1);
  EXPECT_GE(t.raw_rows().capacity(), 100u);
  EXPECT_TRUE(t.sorted_by().empty());
  t.set_sorted_by({0});
  EXPECT_EQ(t.sorted_by(), (std::vector<size_t>{0}));
}

// --- fixed-plan equivalence -----------------------------------------------

class MaterializationFixture : public ::testing::Test {
 protected:
  void BuildDb(Graph g) {
    graph_ = std::make_unique<Graph>(std::move(g));
    db_ = std::make_unique<GraphDatabase>();
    ASSERT_TRUE(db_->Build(*graph_).ok());
  }

  // Same database, same plan, both representations, several thread
  // counts: rows must be identical in identical ORDER (a stronger
  // contract than set equality; see operators.h).
  void ExpectModesAgreeOnPlan(const Pattern& p, const Plan& plan) {
    std::vector<std::vector<NodeId>> reference;
    bool have_reference = false;
    for (unsigned threads : {1u, 4u, 8u}) {
      for (Materialization mode :
           {Materialization::kEager, Materialization::kFactorized}) {
        Executor exec(db_.get(), ExecOptions{.num_threads = threads,
                                             .materialization = mode});
        auto r = exec.Execute(p, plan);
        ASSERT_TRUE(r.ok()) << r.status();
        if (!have_reference) {
          reference = r->rows;
          have_reference = true;
        } else {
          EXPECT_EQ(r->rows, reference)
              << "threads=" << threads << " mode="
              << (mode == Materialization::kEager ? "eager" : "factorized")
              << " pattern " << p.ToString();
        }
      }
    }
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphDatabase> db_;
};

TEST_F(MaterializationFixture, FixedPlansRowOrderIdenticalAcrossModes) {
  BuildDb(gen::ErdosRenyi(220, 700, 5, 17));
  // Chain (fetch chain), star, and a diamond whose closing edge forces a
  // select — the select is fused into the preceding fetch under
  // factorized execution.
  for (const char* q :
       {"L0->L1; L1->L2; L2->L3", "L0->L1; L0->L2; L0->L3",
        "L0->L1; L1->L3; L0->L2; L2->L3", "L0->L1; L1->L2; L0->L2"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    auto plan = OptimizeDps(*p, db_->catalog());
    ASSERT_TRUE(plan.ok()) << plan.status();
    ExpectModesAgreeOnPlan(*p, *plan);
  }
}

TEST_F(MaterializationFixture, FactorizedAvoidsCopiesOnFetchChains) {
  BuildDb(gen::RandomDag(300, 3.0, 4, 5));
  auto p = Pattern::Parse("L0->L1; L1->L2; L2->L3");
  ASSERT_TRUE(p.ok());
  auto plan = OptimizeDps(*p, db_->catalog());
  ASSERT_TRUE(plan.ok());

  Executor fact(db_.get(),
                ExecOptions{.materialization = Materialization::kFactorized});
  auto r = fact.Execute(*p, *plan);
  ASSERT_TRUE(r.ok());
  if (r->rows.empty()) GTEST_SKIP() << "empty result; nothing to measure";
  EXPECT_GT(r->stats.operators.copy_bytes_avoided, 0u);
  // step_rows covers every executed plan step and ends at the result.
  ASSERT_EQ(r->stats.step_rows.size(), plan->steps.size());
  EXPECT_EQ(r->stats.step_rows.back(), r->stats.result_rows);

  // The est-vs-actual dump renders without blowing up.
  auto exp = ExplainPlan(*p, *plan, db_->catalog());
  ASSERT_TRUE(exp.ok());
  std::string dump = exp->ToStringWithActuals(r->stats);
  EXPECT_NE(dump.find("act. rows"), std::string::npos);
  EXPECT_NE(dump.find("materialized:"), std::string::npos);
}

// --- randomized differential ----------------------------------------------

enum class GraphKind { kRandomDag, kErdosRenyi, kScaleFree };

const char* GraphKindName(GraphKind k) {
  switch (k) {
    case GraphKind::kRandomDag:
      return "RandomDag";
    case GraphKind::kErdosRenyi:
      return "ErdosRenyi";
    case GraphKind::kScaleFree:
      return "ScaleFree";
  }
  return "?";
}

Graph MakeGraph(GraphKind kind, uint64_t seed) {
  switch (kind) {
    case GraphKind::kRandomDag:
      return gen::RandomDag(160, 2.6, 5, seed);
    case GraphKind::kErdosRenyi:
      return gen::ErdosRenyi(150, 480, 5, seed);
    case GraphKind::kScaleFree:
      return gen::ScaleFree(150, 3, 5, seed);
  }
  __builtin_unreachable();
}

using ParamT = std::tuple<GraphKind, uint64_t /*seed*/>;

class MaterializationDifferential : public ::testing::TestWithParam<ParamT> {};

TEST_P(MaterializationDifferential, ModesAgreeWithNaiveAcrossThreadCounts) {
  auto [kind, seed] = GetParam();
  Graph g = MakeGraph(kind, seed);

  // One matcher per (mode, thread count) over the same graph.
  struct Variant {
    Materialization mode;
    unsigned threads;
    std::unique_ptr<GraphMatcher> matcher;
  };
  std::vector<Variant> variants;
  for (Materialization mode :
       {Materialization::kEager, Materialization::kFactorized}) {
    for (unsigned t : {1u, 4u, 8u}) {
      auto m = GraphMatcher::Create(
          &g, {}, ExecOptions{.num_threads = t, .materialization = mode});
      ASSERT_TRUE(m.ok()) << m.status();
      variants.push_back({mode, t, std::move(*m)});
    }
  }

  auto patterns = workload::RandomPatterns(g, /*count=*/5, /*nodes=*/3,
                                           /*extra_edges=*/1, seed * 11 + 3);
  auto more = workload::RandomPatterns(g, /*count=*/3, /*nodes=*/4,
                                       /*extra_edges=*/1, seed * 17 + 7);
  patterns.insert(patterns.end(), more.begin(), more.end());
  ASSERT_FALSE(patterns.empty());

  for (const auto& p : patterns) {
    auto expect = variants[0].matcher->Match(p, {.engine = Engine::kNaive});
    ASSERT_TRUE(expect.ok());
    expect->SortRows();
    for (Engine e : {Engine::kDps, Engine::kDp}) {
      for (auto& v : variants) {
        auto r = v.matcher->Match(p, {.engine = e});
        ASSERT_TRUE(r.ok()) << EngineName(e) << ": " << r.status();
        r->SortRows();
        EXPECT_EQ(r->rows, expect->rows)
            << GraphKindName(kind) << " seed " << seed << " engine "
            << EngineName(e) << " threads " << v.threads << " mode "
            << (v.mode == Materialization::kEager ? "eager" : "factorized")
            << " pattern " << p.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndSeeds, MaterializationDifferential,
    ::testing::Combine(::testing::Values(GraphKind::kRandomDag,
                                         GraphKind::kErdosRenyi,
                                         GraphKind::kScaleFree),
                       ::testing::Values(2ull, 5ull)),
    [](const ::testing::TestParamInfo<ParamT>& info) {
      return std::string(GraphKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- LRU plan cache --------------------------------------------------------

TEST(PlanCacheTest, LruEvictionAndCounters) {
  Graph g = gen::ErdosRenyi(80, 240, 4, 3);
  auto m = GraphMatcher::Create(&g, {},
                                ExecOptions{.plan_cache_capacity = 2});
  ASSERT_TRUE(m.ok());
  GraphMatcher& matcher = **m;
  EXPECT_EQ(matcher.plan_cache_capacity(), 2u);

  const char* q0 = "L0->L1";
  const char* q1 = "L1->L2";
  const char* q2 = "L2->L3";
  ASSERT_TRUE(matcher.Match(q0).ok());  // miss -> {q0}
  ASSERT_TRUE(matcher.Match(q1).ok());  // miss -> {q1, q0}
  EXPECT_EQ(matcher.plan_cache_size(), 2u);
  EXPECT_EQ(matcher.plan_cache_hits(), 0u);
  EXPECT_EQ(matcher.plan_cache_misses(), 2u);

  ASSERT_TRUE(matcher.Match(q0).ok());  // hit, refreshes q0 -> {q0, q1}
  EXPECT_EQ(matcher.plan_cache_hits(), 1u);

  ASSERT_TRUE(matcher.Match(q2).ok());  // miss, evicts q1 -> {q2, q0}
  EXPECT_EQ(matcher.plan_cache_size(), 2u);
  ASSERT_TRUE(matcher.Match(q0).ok());  // still cached
  EXPECT_EQ(matcher.plan_cache_hits(), 2u);
  ASSERT_TRUE(matcher.Match(q1).ok());  // evicted above -> miss again
  EXPECT_EQ(matcher.plan_cache_misses(), 4u);
  EXPECT_EQ(matcher.plan_cache_size(), 2u);

  matcher.ClearPlanCache();
  EXPECT_EQ(matcher.plan_cache_size(), 0u);
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  Graph g = gen::ErdosRenyi(80, 240, 4, 3);
  auto m = GraphMatcher::Create(&g, {},
                                ExecOptions{.plan_cache_capacity = 0});
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->Match("L0->L1").ok());
  ASSERT_TRUE((*m)->Match("L0->L1").ok());
  EXPECT_EQ((*m)->plan_cache_size(), 0u);
  EXPECT_EQ((*m)->plan_cache_hits(), 0u);
}

TEST(PlanCacheTest, DisabledViaMatchOptionsBypassesCache) {
  Graph g = gen::ErdosRenyi(80, 240, 4, 3);
  auto m = GraphMatcher::Create(&g);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->Match("L0->L1", {.use_plan_cache = false}).ok());
  EXPECT_EQ((*m)->plan_cache_size(), 0u);
}

}  // namespace
}  // namespace fgpm
