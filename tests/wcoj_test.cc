// WCOJ operator and planner tests:
//  * Randomized differential on cyclic patterns (triangles through
//    5-cliques, cycles, diamonds): the kWcoj and kHybrid strategies vs
//    the naive matcher AND vs the binary-plan strategy, at 1, 4 and 8
//    threads, under both materialization modes — with the exact
//    row-order determinism contract across thread counts.
//  * Hybrid gating: acyclic patterns never get bind steps; forced kWcoj
//    produces pure scan+bind plans that validate.
//  * Plan-cache regression: the cache key includes the join strategy,
//    so toggling strategies never replays a stale plan.
//  * Plan validation rejects malformed bind steps.
//  * EXPLAIN ANALYZE renders bind steps with per-vertex candidate
//    estimates.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "opt/wcoj_planner.h"

namespace fgpm {
namespace {

// Cyclic pattern-graph shapes (labels L0.. resolve in every generated
// graph below). Edges are reachability constraints; what matters for
// WCOJ is the undirected cycle structure of the pattern graph.
const char* kTriangle = "L0->L1; L0->L2; L1->L2";
const char* kDirectedTriangle = "L0->L1; L1->L2; L2->L0";
const char* kDiamond = "L0->L1; L0->L2; L1->L3; L2->L3";
const char* kFourClique = "L0->L1; L0->L2; L0->L3; L1->L2; L1->L3; L2->L3";
const char* kFiveClique =
    "L0->L1; L0->L2; L0->L3; L0->L4; L1->L2; L1->L3; L1->L4; L2->L3; "
    "L2->L4; L3->L4";
const char* kFiveCycle = "L0->L1; L1->L2; L2->L3; L3->L4; L0->L4";

struct StrategyCase {
  JoinStrategy strategy;
  const char* name;
};

class WcojDifferential
    : public ::testing::TestWithParam<std::tuple<int /*graph*/, uint64_t>> {};

Graph MakeTestGraph(int kind, uint64_t seed) {
  switch (kind) {
    case 0:
      // Small and sparse on purpose: reachability on a cyclic graph is
      // dense, so result sets (and the naive oracle) explode quickly.
      return gen::ErdosRenyi(60, 120, 5, seed);  // cyclic, has SCCs
    default:
      return gen::RandomDag(140, 1.8, 5, seed);  // sparse reachability
  }
}

TEST_P(WcojDifferential, CyclicPatternsMatchNaiveAndBinary) {
  auto [kind, seed] = GetParam();
  Graph g = MakeTestGraph(kind, seed);

  // One matcher per (threads, materialization); strategies toggle on
  // the same matcher via set_join_strategy (exercising the cache key).
  struct M {
    unsigned threads;
    Materialization mat;
    std::unique_ptr<GraphMatcher> matcher;
  };
  std::vector<M> ms;
  for (unsigned t : {1u, 4u, 8u}) {
    for (Materialization mat :
         {Materialization::kFactorized, Materialization::kEager}) {
      ExecOptions eo;
      eo.num_threads = t;
      eo.materialization = mat;
      auto m = GraphMatcher::Create(&g, {}, eo);
      ASSERT_TRUE(m.ok()) << m.status();
      ms.push_back({t, mat, std::move(*m)});
    }
  }

  std::vector<std::string> patterns = {kTriangle, kDiamond, kFourClique,
                                       kFiveCycle};
  if (kind == 0) patterns.push_back(kDirectedTriangle);
  if (kind != 0) patterns.push_back(kFiveClique);

  for (const std::string& text : patterns) {
    auto p = Pattern::Parse(text);
    ASSERT_TRUE(p.ok()) << text;
    auto expect = ms[0].matcher->Match(*p, {.engine = Engine::kNaive});
    ASSERT_TRUE(expect.ok()) << expect.status();
    expect->SortRows();

    for (Engine e : {Engine::kDps, Engine::kDp}) {
      for (const StrategyCase& sc :
           {StrategyCase{JoinStrategy::kBinary, "binary"},
            StrategyCase{JoinStrategy::kWcoj, "wcoj"},
            StrategyCase{JoinStrategy::kHybrid, "hybrid"}}) {
        std::vector<std::vector<NodeId>> single_rows;
        for (M& m : ms) {
          m.matcher->set_join_strategy(sc.strategy);
          auto r = m.matcher->Match(*p, {.engine = e});
          ASSERT_TRUE(r.ok()) << sc.name << ": " << r.status();
          // Determinism: identical row order across thread counts
          // within one materialization mode and strategy.
          if (m.threads == 1 && m.mat == Materialization::kFactorized) {
            single_rows = r->rows;
          } else if (m.mat == Materialization::kFactorized) {
            EXPECT_EQ(r->rows, single_rows)
                << sc.name << " threads " << m.threads
                << " differs from single-threaded rows, " << text;
          }
          r->SortRows();
          EXPECT_EQ(r->rows, expect->rows)
              << EngineName(e) << "/" << sc.name << " threads " << m.threads
              << " mat " << (m.mat == Materialization::kEager ? "E" : "F")
              << " pattern " << text;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndSeeds, WcojDifferential,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(1ull, 5ull)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "ErdosRenyi"
                                                      : "RandomDag") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(WcojPlannerTest, CyclicCoreDetection) {
  auto tri = Pattern::Parse(kTriangle);
  ASSERT_TRUE(tri.ok());
  PatternCore core = FindCyclicCore(*tri);
  EXPECT_TRUE(core.has_core());
  EXPECT_EQ(core.core_nodes.size(), 3u);
  EXPECT_EQ(core.core_edges.size(), 3u);
  EXPECT_TRUE(core.appendage_edges.empty());

  // Path: no core.
  auto path = Pattern::Parse("L0->L1; L1->L2; L2->L3");
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(FindCyclicCore(*path).has_core());

  // Triangle with a pendant: pendant edge is an appendage.
  auto pendant = Pattern::Parse("L0->L1; L0->L2; L1->L2; L2->L3");
  ASSERT_TRUE(pendant.ok());
  PatternCore pc = FindCyclicCore(*pendant);
  EXPECT_TRUE(pc.has_core());
  EXPECT_EQ(pc.core_nodes.size(), 3u);
  EXPECT_EQ(pc.appendage_edges.size(), 1u);
}

TEST(WcojPlannerTest, ForcedWcojPlanIsScanPlusBinds) {
  Graph g = gen::RandomDag(80, 1.5, 4, 3);
  ExecOptions eo;
  eo.join_strategy = JoinStrategy::kWcoj;
  auto m = GraphMatcher::Create(&g, {}, eo);
  ASSERT_TRUE(m.ok());
  auto p = Pattern::Parse(kFourClique);
  ASSERT_TRUE(p.ok());
  auto plan = (*m)->MakePlan(*p, Engine::kDps);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->steps.size(), 4u);  // scan + 3 binds
  EXPECT_EQ(plan->steps[0].kind, StepKind::kScanBase);
  size_t consumed = 0;
  for (size_t i = 1; i < plan->steps.size(); ++i) {
    EXPECT_EQ(plan->steps[i].kind, StepKind::kWcojBind);
    consumed += plan->steps[i].wcoj_edges.size();
  }
  EXPECT_EQ(consumed, p->num_edges());
  EXPECT_TRUE(plan->Validate(*p).ok());
  EXPECT_GT(plan->estimated_cost, 0.0);
}

TEST(WcojPlannerTest, HybridKeepsBinaryPlansOnAcyclicPatterns) {
  Graph g = gen::RandomDag(80, 1.5, 4, 3);
  ExecOptions eo;
  eo.join_strategy = JoinStrategy::kHybrid;
  auto m = GraphMatcher::Create(&g, {}, eo);
  ASSERT_TRUE(m.ok());
  for (const char* text : {"L0->L1; L1->L2; L2->L3", "L0->L1; L0->L2",
                           "L0->L1; L1->L2; L1->L3"}) {
    auto p = Pattern::Parse(text);
    ASSERT_TRUE(p.ok());
    for (Engine e : {Engine::kDps, Engine::kDp}) {
      auto plan = (*m)->MakePlan(*p, e);
      ASSERT_TRUE(plan.ok());
      for (const PlanStep& s : plan->steps) {
        EXPECT_NE(s.kind, StepKind::kWcojBind)
            << text << " got a bind step under " << EngineName(e);
      }
    }
  }
}

TEST(WcojPlanValidationTest, RejectsMalformedBindSteps) {
  auto p = Pattern::Parse(kTriangle);
  ASSERT_TRUE(p.ok());

  // Empty constraint list.
  {
    Plan plan;
    plan.steps.push_back(PlanStep::ScanBase(0));
    plan.steps.push_back(PlanStep::WcojBind(1, {}));
    EXPECT_FALSE(plan.Validate(*p).ok());
  }
  // Binding an already-bound vertex.
  {
    Plan plan;
    plan.steps.push_back(PlanStep::ScanBase(0));
    plan.steps.push_back(PlanStep::WcojBind(0, {0}));
    EXPECT_FALSE(plan.Validate(*p).ok());
  }
  // Constraint edge not touching the bound vertex: edge 2 is L1->L2,
  // vertex 1 bound via edge 0 first; binding vertex 2 with edge 0
  // (L0->L1) does not touch vertex 2.
  {
    Plan plan;
    plan.steps.push_back(PlanStep::ScanBase(0));
    plan.steps.push_back(PlanStep::WcojBind(1, {0}));
    plan.steps.push_back(PlanStep::WcojBind(2, {0}));
    EXPECT_FALSE(plan.Validate(*p).ok());
  }
  // Edge whose other endpoint is unbound.
  {
    Plan plan;
    plan.steps.push_back(PlanStep::ScanBase(0));
    plan.steps.push_back(PlanStep::WcojBind(1, {0, 2}));  // edge 2: L1->L2
    EXPECT_FALSE(plan.Validate(*p).ok());
  }
  // A correct scan + bind + bind triangle plan validates.
  {
    Plan plan;
    plan.steps.push_back(PlanStep::ScanBase(0));
    plan.steps.push_back(PlanStep::WcojBind(1, {0}));
    plan.steps.push_back(PlanStep::WcojBind(2, {1, 2}));
    EXPECT_TRUE(plan.Validate(*p).ok());
  }
}

TEST(WcojPlanCacheTest, CacheKeyIncludesJoinStrategy) {
  Graph g = gen::ErdosRenyi(90, 220, 4, 7);
  auto m = GraphMatcher::Create(&g, {}, {});  // default kHybrid
  ASSERT_TRUE(m.ok());
  auto p = Pattern::Parse(kTriangle);
  ASSERT_TRUE(p.ok());

  auto r1 = (*m)->Match(*p, {.engine = Engine::kDps});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*m)->plan_cache_size(), 1u);

  // Regression: before the strategy was part of the key, this lookup
  // hit the hybrid plan and executed it under kBinary.
  (*m)->set_join_strategy(JoinStrategy::kBinary);
  auto r2 = (*m)->Match(*p, {.engine = Engine::kDps});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*m)->plan_cache_size(), 2u);
  EXPECT_EQ((*m)->plan_cache_hits(), 0u);

  (*m)->set_join_strategy(JoinStrategy::kWcoj);
  auto r3 = (*m)->Match(*p, {.engine = Engine::kDps});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ((*m)->plan_cache_size(), 3u);

  // Same strategy again: now it hits.
  auto r4 = (*m)->Match(*p, {.engine = Engine::kDps});
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ((*m)->plan_cache_size(), 3u);
  EXPECT_EQ((*m)->plan_cache_hits(), 1u);

  // All three strategies agree on the result set.
  r1->SortRows();
  r2->SortRows();
  r3->SortRows();
  EXPECT_EQ(r1->rows, r2->rows);
  EXPECT_EQ(r1->rows, r3->rows);
}

TEST(WcojExplainTest, BindStepsRenderCandidateEstimates) {
  Graph g = gen::ErdosRenyi(90, 220, 4, 9);
  ExecOptions eo;
  eo.join_strategy = JoinStrategy::kWcoj;
  auto m = GraphMatcher::Create(&g, {}, eo);
  ASSERT_TRUE(m.ok());
  auto ea = (*m)->ExplainAnalyze(kTriangle, {.engine = Engine::kDps});
  ASSERT_TRUE(ea.ok()) << ea.status();
  EXPECT_NE(ea->report.find("BIND("), std::string::npos) << ea->report;
  EXPECT_NE(ea->report.find("cands/row"), std::string::npos) << ea->report;
  EXPECT_NE(ea->report.find("wcoj:"), std::string::npos) << ea->report;
  // The estimates replay the planner's own charges.
  EXPECT_NEAR(ea->explanation.total_cost,
              (*m)->MakePlan(*Pattern::Parse(kTriangle), Engine::kDps)
                  ->estimated_cost,
              1e-6);
  // Execution under the same call is still exact.
  auto naive = (*m)->Match(kTriangle, {.engine = Engine::kNaive});
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(ea->result.rows.size(), naive->rows.size());
}

}  // namespace
}  // namespace fgpm
