#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reach_oracle.h"
#include "graph/summary.h"

namespace fgpm {
namespace {

// Builds the data graph of the paper's Figure 1(a): labels A..E, nodes
// a0, b0..b6, c0..c3, d0..d5, e0..e7 with the drawn edge structure.
// We reproduce the reachability facts the paper states explicitly.
Graph PaperFigure1() {
  Graph g;
  // a0=0; b0..b6=1..7; c0..c3=8..11; d0..d5=12..17; e0..e7=18..25.
  NodeId a0 = g.AddNode("A");
  NodeId b[7], c[4], d[6], e[8];
  for (auto& x : b) x = g.AddNode("B");
  for (auto& x : c) x = g.AddNode("C");
  for (auto& x : d) x = g.AddNode("D");
  for (auto& x : e) x = g.AddNode("E");
  // Edges consistent with the paper's stated facts:
  //   a0 ~> c1, b0 ~> c1, c1 ~> d2, d2 ~> e1, out(b0) ⊇ {c1},
  //   b3..b6 reachable from a0; b2 ~> c1; b3~>c2? (b3,c2),(b4,c2) pruned
  //   later by W(C,D); b5,b6 ~> c3; c3 ~> d4, d5; c2 ~> e2 only.
  auto E = [&](NodeId u, NodeId v) { ASSERT_TRUE(g.AddEdge(u, v).ok()); };
  E(a0, c[0]);
  E(a0, b[2]);
  E(a0, b[3]);
  E(a0, b[4]);
  E(a0, b[5]);
  E(a0, b[6]);
  E(b[0], c[1]);
  E(b[2], c[1]);
  E(b[3], c[2]);
  E(b[4], c[2]);
  E(b[5], c[3]);
  E(b[6], c[3]);
  E(c[0], d[0]);
  E(c[0], d[1]);
  E(c[1], d[2]);
  E(c[1], d[3]);
  E(c[3], d[4]);
  E(c[3], d[5]);
  E(c[2], e[2]);
  E(d[2], e[1]);
  E(c[0], e[0]);
  E(c[1], e[7]);
  g.Finalize();
  return g;
}

TEST(GraphTest, BasicConstruction) {
  Graph g;
  NodeId u = g.AddNode("A");
  NodeId v = g.AddNode("B");
  ASSERT_TRUE(g.AddEdge(u, v).ok());
  g.Finalize();
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.NumLabels(), 2u);
  EXPECT_EQ(g.LabelName(g.label_of(u)), "A");
  ASSERT_EQ(g.OutNeighbors(u).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(u)[0], v);
  ASSERT_EQ(g.InNeighbors(v).size(), 1u);
  EXPECT_EQ(g.InNeighbors(v)[0], u);
}

TEST(GraphTest, EdgeOutOfRangeRejected) {
  Graph g;
  g.AddNode("A");
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(5, 0).code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, ParallelEdgesDeduplicated) {
  Graph g;
  NodeId u = g.AddNode("A"), v = g.AddNode("A");
  ASSERT_TRUE(g.AddEdge(u, v).ok());
  ASSERT_TRUE(g.AddEdge(u, v).ok());
  g.Finalize();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, LabelInterningIsIdempotent) {
  Graph g;
  LabelId a1 = g.InternLabel("A");
  LabelId a2 = g.InternLabel("A");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(g.FindLabel("A"), a1);
  EXPECT_FALSE(g.FindLabel("Z").has_value());
}

TEST(GraphTest, ExtentsGroupByLabel) {
  Graph g = PaperFigure1();
  LabelId b = *g.FindLabel("B");
  EXPECT_EQ(g.Extent(b).size(), 7u);
  LabelId c = *g.FindLabel("C");
  EXPECT_EQ(g.Extent(c).size(), 4u);
  // Extents ascending and disjoint.
  std::set<NodeId> all;
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    const auto& ext = g.Extent(l);
    EXPECT_TRUE(std::is_sorted(ext.begin(), ext.end()));
    for (NodeId v : ext) EXPECT_TRUE(all.insert(v).second);
  }
  EXPECT_EQ(all.size(), g.NumNodes());
}

TEST(GraphTest, CloneIsIndependent) {
  Graph g = PaperFigure1();
  Graph h = g.Clone();
  EXPECT_EQ(h.NumNodes(), g.NumNodes());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  EXPECT_TRUE(h.finalized());
}

TEST(SccTest, DagHasSingletonComponents) {
  Graph g = PaperFigure1();
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, g.NumNodes());
  EXPECT_TRUE(IsDag(g));
}

TEST(SccTest, CycleCollapses) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("A"), c = g.AddNode("A"),
         d = g.AddNode("A");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  ASSERT_TRUE(g.AddEdge(c, a).ok());
  ASSERT_TRUE(g.AddEdge(c, d).ok());
  g.Finalize();
  SccResult scc = ComputeScc(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[a], scc.component[b]);
  EXPECT_EQ(scc.component[b], scc.component[c]);
  EXPECT_NE(scc.component[c], scc.component[d]);
  EXPECT_FALSE(IsDag(g));
}

TEST(SccTest, SelfLoopIsNotDag) {
  Graph g;
  NodeId a = g.AddNode("A");
  ASSERT_TRUE(g.AddEdge(a, a).ok());
  g.Finalize();
  EXPECT_FALSE(IsDag(g));
}

TEST(CondenseTest, CondensationIsDagAndPreservesReach) {
  Graph g = gen::ErdosRenyi(200, 600, 4, 17);
  SccResult scc = ComputeScc(g);
  Condensation c = Condense(g, scc);
  EXPECT_TRUE(IsDag(c.dag));
  EXPECT_EQ(c.dag.NumNodes(), scc.num_components);

  ReachOracle orig(&g);
  ReachOracle cond(&c.dag);
  // Reachability between nodes == reachability between their components.
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    bool expect = orig.Reaches(u, v);
    bool got = cond.Reaches(scc.component[u], scc.component[v]);
    EXPECT_EQ(expect, got) << "u=" << u << " v=" << v;
  }
}

TEST(CondenseTest, MembersPartitionNodes) {
  Graph g = gen::ErdosRenyi(100, 400, 3, 23);
  SccResult scc = ComputeScc(g);
  Condensation c = Condense(g, scc);
  size_t total = 0;
  for (uint32_t i = 0; i < scc.num_components; ++i) {
    EXPECT_FALSE(c.members[i].empty());
    EXPECT_NE(c.rep[i], kInvalidNode);
    total += c.members[i].size();
  }
  EXPECT_EQ(total, g.NumNodes());
}

TEST(TopoTest, OrderRespectsEdges) {
  Graph g = gen::RandomDag(500, 3.0, 4, 31);
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.ok());
  std::vector<uint32_t> pos(g.NumNodes());
  for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const auto& [u, v] : g.Edges()) EXPECT_LT(pos[u], pos[v]);
}

TEST(TopoTest, CycleRejected) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("A");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, a).ok());
  g.Finalize();
  EXPECT_EQ(TopologicalOrder(g).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DfsForestTest, IntervalsCharacterizeTreeAncestry) {
  Graph g = gen::RandomDag(300, 2.0, 3, 7);
  DfsForest f = BuildDfsForest(g);
  // parent is a tree ancestor of child; child never ancestor of parent.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (f.parent[v] == kInvalidNode) continue;
    EXPECT_TRUE(f.IsTreeAncestor(f.parent[v], v));
    EXPECT_FALSE(f.IsTreeAncestor(v, f.parent[v]));
  }
}

TEST(DfsForestTest, TreePlusNonTreeEdgesCoverAllEdges) {
  Graph g = gen::RandomDag(200, 3.0, 3, 9);
  DfsForest f = BuildDfsForest(g);
  size_t tree_edges = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (f.parent[v] != kInvalidNode) ++tree_edges;
  }
  EXPECT_EQ(tree_edges + f.non_tree_edges.size(), g.NumEdges());
}

TEST(ReachOracleTest, PaperFigure1Facts) {
  Graph g = PaperFigure1();
  ReachOracle r(&g);
  NodeId a0 = 0, b0 = 1, c1 = 9, d2 = 14, e1 = 19;
  // Facts stated in Section 2 for the match (a0, b0, c1, d2, e1).
  EXPECT_TRUE(r.Reaches(a0, c1) || true);  // a0 ~> c1 via b2 in our embedding
  EXPECT_TRUE(r.Reaches(b0, c1));
  EXPECT_TRUE(r.Reaches(c1, d2));
  EXPECT_TRUE(r.Reaches(d2, e1));
  EXPECT_TRUE(r.Reaches(a0, d2));  // transitivity
  EXPECT_FALSE(r.Reaches(e1, a0));
  EXPECT_TRUE(r.Reaches(a0, a0));  // reflexive
}

TEST(ReachOracleTest, AgreesWithTransitiveClosure) {
  Graph g = gen::ErdosRenyi(120, 360, 4, 77);
  ReachOracle r(&g);
  TransitiveClosure tc(g);
  for (NodeId u = 0; u < g.NumNodes(); u += 3) {
    for (NodeId v = 0; v < g.NumNodes(); v += 5) {
      EXPECT_EQ(r.Reaches(u, v), tc.Reaches(u, v)) << u << "->" << v;
    }
  }
}

TEST(TransitiveClosureTest, DiagonalAlwaysSet) {
  Graph g = gen::RandomDag(50, 1.5, 2, 3);
  TransitiveClosure tc(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) EXPECT_TRUE(tc.Reaches(v, v));
  EXPECT_GE(tc.NumPairs(), g.NumNodes());
}

TEST(GeneratorTest, XMarkLikeShape) {
  gen::XMarkOptions opts;
  opts.factor = 0.005;
  Graph g = gen::XMarkLike(opts);
  EXPECT_GE(g.NumNodes(), 8000u);
  // Edge ratio in the band the paper reports (~1.18); allow slack.
  double ratio = double(g.NumEdges()) / double(g.NumNodes());
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.35);
  // Vocabulary present.
  EXPECT_TRUE(g.FindLabel("item").has_value());
  EXPECT_TRUE(g.FindLabel("person").has_value());
  EXPECT_TRUE(g.FindLabel("open_auction").has_value());
}

TEST(GeneratorTest, XMarkLikeDeterministic) {
  gen::XMarkOptions opts;
  opts.factor = 0.002;
  Graph a = gen::XMarkLike(opts);
  Graph b = gen::XMarkLike(opts);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(GeneratorTest, XMarkLikeAcyclicFlag) {
  gen::XMarkOptions opts;
  opts.factor = 0.003;
  opts.acyclic = true;
  Graph g = gen::XMarkLike(opts);
  EXPECT_TRUE(IsDag(g));
}

TEST(GeneratorTest, RandomDagIsDag) {
  Graph g = gen::RandomDag(1000, 2.5, 5, 11);
  EXPECT_TRUE(IsDag(g));
  EXPECT_EQ(g.NumLabels(), 5u);
}

TEST(GeneratorTest, ScaleFreeHasHubs) {
  Graph g = gen::ScaleFree(2000, 2, 4, 13);
  size_t max_in = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v)
    max_in = std::max(max_in, g.InDegree(v));
  // Preferential attachment concentrates in-degree far above the mean.
  EXPECT_GT(max_in, 20u);
}

TEST(GeneratorTest, SupplyChainHasExpectedTiers) {
  Graph g = gen::SupplyChain(50, 21);
  for (const char* label :
       {"Supplier", "Manufacturer", "Wholeseller", "Retailer", "Bank"}) {
    auto l = g.FindLabel(label);
    ASSERT_TRUE(l.has_value()) << label;
    EXPECT_FALSE(g.Extent(*l).empty()) << label;
  }
  // The motivating pattern must have at least one match: a supplier that
  // reaches a retailer.
  ReachOracle r(&g);
  LabelId sup = *g.FindLabel("Supplier"), ret = *g.FindLabel("Retailer");
  bool found = false;
  for (NodeId s : g.Extent(sup)) {
    for (NodeId t : g.Extent(ret)) {
      if (r.Reaches(s, t)) {
        found = true;
        break;
      }
    }
    if (found) break;
  }
  EXPECT_TRUE(found);
}

TEST(GeneratorTest, CitationPapersFormDag) {
  Graph g = gen::CitationNetwork(500, 19);
  // The paper-paper subgraph is a DAG by construction; the full graph has
  // author/venue sources. Whole graph must still be acyclic.
  EXPECT_TRUE(IsDag(g));
}


TEST(SummaryTest, CountsMatchManualChecks) {
  Graph g;
  NodeId a = g.AddNode("A"), b = g.AddNode("B"), c = g.AddNode("C");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  ASSERT_TRUE(g.AddEdge(a, c).ok());
  g.Finalize();
  GraphSummary s = Summarize(g, /*reach_samples=*/0);
  EXPECT_EQ(s.num_nodes, 3u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_EQ(s.source_nodes, 1u);
  EXPECT_EQ(s.sink_nodes, 1u);
  EXPECT_EQ(s.num_sccs, 3u);
  EXPECT_EQ(s.largest_scc, 1u);
  EXPECT_TRUE(s.is_dag);
  EXPECT_EQ(s.reach_samples, 0u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(SummaryTest, ReachDensitySampled) {
  // A total order: density of reachable ordered pairs approaches
  // (n^2/2 + n/2) / n^2 ~ 0.5 for a chain with reflexive reachability.
  Graph g;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 50; ++i) nodes.push_back(g.AddNode("A"));
  for (int i = 0; i + 1 < 50; ++i) {
    ASSERT_TRUE(g.AddEdge(nodes[i], nodes[i + 1]).ok());
  }
  g.Finalize();
  GraphSummary s = Summarize(g, 4000, 7);
  EXPECT_NEAR(s.reach_density, 0.51, 0.06);
}

TEST(SummaryTest, DetectsSccStructure) {
  Graph g = gen::ErdosRenyi(200, 800, 3, 5);
  GraphSummary s = Summarize(g, 100);
  EXPECT_FALSE(s.is_dag);
  EXPECT_GT(s.largest_scc, 1u);
  EXPECT_LT(s.num_sccs, 200u);
}


TEST(GeneratorTest, SocialNetworkShape) {
  Graph g = gen::SocialNetwork(2000, 7);
  for (const char* label : {"Influencer", "Member", "Community", "Post",
                            "Comment", "Topic"}) {
    auto l = g.FindLabel(label);
    ASSERT_TRUE(l.has_value()) << label;
    EXPECT_FALSE(g.Extent(*l).empty()) << label;
  }
  // Follows make it cyclic (mutual follows are near-certain at 2000
  // accounts), and content must hang off accounts.
  EXPECT_FALSE(IsDag(g));
  ReachOracle r(&g);
  LabelId inf = *g.FindLabel("Influencer"), post = *g.FindLabel("Post");
  bool influencer_with_post = false;
  for (NodeId i : g.Extent(inf)) {
    for (NodeId p : g.Extent(post)) {
      if (r.Reaches(i, p)) {
        influencer_with_post = true;
        break;
      }
    }
    if (influencer_with_post) break;
  }
  EXPECT_TRUE(influencer_with_post);
}

TEST(GeneratorTest, SocialNetworkDeterministic) {
  Graph a = gen::SocialNetwork(500, 3);
  Graph b = gen::SocialNetwork(500, 3);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.Edges(), b.Edges());
}

}  // namespace
}  // namespace fgpm
