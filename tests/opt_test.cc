#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/rng.h"
#include "exec/engine.h"
#include "exec/naive_matcher.h"
#include "graph/generators.h"
#include "opt/cost_model.h"
#include "opt/dp_optimizer.h"
#include "opt/dps_optimizer.h"
#include "opt/explain.h"
#include "query/pattern.h"

namespace fgpm {
namespace {

class OptFixture : public ::testing::Test {
 protected:
  void BuildDb(Graph g) {
    graph_ = std::make_unique<Graph>(std::move(g));
    db_ = std::make_unique<GraphDatabase>();
    ASSERT_TRUE(db_->Build(*graph_).ok());
    exec_ = std::make_unique<Executor>(db_.get());
  }

  // Optimized plans (DP, DPS, canonical) must all agree with naive.
  void ExpectAllOptimizersAgree(const Pattern& p) {
    auto want = NaiveMatch(*graph_, p);
    ASSERT_TRUE(want.ok());
    want->SortRows();
    for (int which = 0; which < 3; ++which) {
      Result<Plan> plan = (which == 0)   ? OptimizeDp(p, db_->catalog())
                          : (which == 1) ? OptimizeDps(p, db_->catalog())
                                         : MakeCanonicalPlan(p);
      ASSERT_TRUE(plan.ok()) << which << ": " << plan.status();
      auto got = exec_->Execute(p, *plan);
      ASSERT_TRUE(got.ok()) << which << ": " << got.status() << " plan "
                            << plan->ToString(p);
      got->SortRows();
      EXPECT_EQ(got->rows, want->rows)
          << "optimizer " << which << " plan " << plan->ToString(p);
    }
  }

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphDatabase> db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(OptFixture, CostModelBasics) {
  BuildDb(gen::ErdosRenyi(200, 600, 4, 3));
  CostModel model(&db_->catalog());
  for (LabelId x = 0; x < db_->num_labels(); ++x) {
    EXPECT_GT(model.ScanBaseCost(x), 0.0);
    for (LabelId y = 0; y < db_->num_labels(); ++y) {
      EXPECT_GE(model.BaseJoinSize(x, y), 0.0);
      EXPECT_GE(model.SelectSelectivity(x, y), 0.0);
      EXPECT_LE(model.SelectSelectivity(x, y), 1.0);
      EXPECT_GE(model.SemijoinSurvival(x, y, true), 0.0);
      EXPECT_LE(model.SemijoinSurvival(x, y, true), 1.0);
      EXPECT_GE(model.HpsjBaseCost(x, y), model.params().io_wtable_probe);
    }
  }
}

TEST_F(OptFixture, FilterSharingIsCheaperInModel) {
  BuildDb(gen::ErdosRenyi(200, 600, 4, 5));
  CostModel model(&db_->catalog());
  double rows = 1000;
  // Two semijoins sharing one scanned column vs two separate scans.
  double shared = model.FilterCost(rows, 1, 2);
  double separate = 2 * model.FilterCost(rows, 1, 1);
  EXPECT_LT(shared, separate);
}

TEST_F(OptFixture, CanonicalPlanShapes) {
  BuildDb(gen::ErdosRenyi(100, 300, 5, 7));
  auto p = Pattern::Parse("L0->L1; L1->L2; L2->L3; L0->L3");
  ASSERT_TRUE(p.ok());
  auto plan = MakeCanonicalPlan(*p);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate(*p).ok());
  EXPECT_EQ(plan->steps[0].kind, StepKind::kHpsjBase);
}

TEST_F(OptFixture, DpPlanValidatesAndHasFiniteCost) {
  BuildDb(gen::ErdosRenyi(300, 900, 5, 9));
  auto p = Pattern::Parse("L0->L1; L1->L2; L2->L3");
  ASSERT_TRUE(p.ok());
  auto plan = OptimizeDp(*p, db_->catalog());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate(*p).ok());
  EXPECT_GT(plan->estimated_cost, 0.0);
}

TEST_F(OptFixture, DpsPlanValidatesAndIsNoWorseThanDpInModel) {
  BuildDb(gen::ErdosRenyi(300, 900, 5, 11));
  for (const char* q :
       {"L0->L1; L1->L2", "L0->L1; L1->L2; L1->L3",
        "L0->L2; L1->L2; L2->L3; L3->L4",
        "L0->L1; L0->L2; L1->L3; L2->L3"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    auto dp = OptimizeDp(*p, db_->catalog());
    auto dps = OptimizeDps(*p, db_->catalog());
    ASSERT_TRUE(dp.ok());
    ASSERT_TRUE(dps.ok());
    // DPS's move set strictly contains DP's plan space (modulo the
    // orphan-fetch restriction), so its estimate must not be worse.
    EXPECT_LE(dps->estimated_cost, dp->estimated_cost * 1.0001) << q;
  }
}

TEST_F(OptFixture, MissingLabelFallsBackToCanonical) {
  BuildDb(gen::ErdosRenyi(50, 100, 2, 13));
  auto p = Pattern::Parse("L0->NoSuchLabel");
  ASSERT_TRUE(p.ok());
  auto dp = OptimizeDp(*p, db_->catalog());
  ASSERT_TRUE(dp.ok());
  auto r = exec_->Execute(*p, *dp);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(OptFixture, PaperFigure1PatternAllOptimizers) {
  // The data graph of Figure 1 with the pattern of Figure 1(b).
  Graph g;
  NodeId a0 = g.AddNode("A");
  NodeId b[7], c[4], d[6], e[8];
  for (auto& x : b) x = g.AddNode("B");
  for (auto& x : c) x = g.AddNode("C");
  for (auto& x : d) x = g.AddNode("D");
  for (auto& x : e) x = g.AddNode("E");
  auto E = [&](NodeId u, NodeId v) { ASSERT_TRUE(g.AddEdge(u, v).ok()); };
  E(a0, c[0]); E(a0, b[2]); E(a0, b[3]); E(a0, b[4]); E(a0, b[5]);
  E(a0, b[6]); E(b[0], c[1]); E(b[2], c[1]); E(b[3], c[2]); E(b[4], c[2]);
  E(b[5], c[3]); E(b[6], c[3]); E(c[0], d[0]); E(c[0], d[1]); E(c[1], d[2]);
  E(c[1], d[3]); E(c[3], d[4]); E(c[3], d[5]); E(c[2], e[2]); E(d[2], e[1]);
  E(c[0], e[0]); E(c[1], e[7]);
  g.Finalize();
  BuildDb(std::move(g));
  auto p = Pattern::Parse("A->C; B->C; C->D; D->E");
  ASSERT_TRUE(p.ok());
  ExpectAllOptimizersAgree(*p);
}

TEST_F(OptFixture, RandomizedAgreementAcrossShapes) {
  const char* kQueries[] = {
      "L0->L1",
      "L0->L1; L1->L2",
      "L0->L2; L1->L2",
      "L0->L1; L1->L2; L2->L3",
      "L0->L1; L0->L2; L0->L3",
      "L0->L1; L1->L2; L0->L2",          // triangle
      "L0->L1; L1->L2; L2->L3; L0->L3",  // diamond-with-chord shape
      "L0->L1; L1->L0",                  // 2-cycle
  };
  for (uint64_t seed : {301ull, 302ull}) {
    BuildDb(gen::ErdosRenyi(120, 360, 4, seed));
    for (const char* q : kQueries) {
      auto p = Pattern::Parse(q);
      ASSERT_TRUE(p.ok()) << q;
      ExpectAllOptimizersAgree(*p);
    }
  }
}

TEST_F(OptFixture, RandomizedAgreementOnDags) {
  for (uint64_t seed : {401ull, 402ull}) {
    BuildDb(gen::RandomDag(200, 2.5, 5, seed));
    for (const char* q :
         {"L0->L1; L1->L2; L2->L3; L3->L4",
          "L0->L2; L1->L2; L2->L3; L2->L4",
          "L4->L3; L3->L2; L4->L1"}) {
      auto p = Pattern::Parse(q);
      ASSERT_TRUE(p.ok()) << q;
      ExpectAllOptimizersAgree(*p);
    }
  }
}

TEST_F(OptFixture, DpsOnXMarkPattern) {
  gen::XMarkOptions opts;
  opts.factor = 0.003;
  BuildDb(gen::XMarkLike(opts));
  auto p = Pattern::Parse("site->region; region->item; item->incategory");
  ASSERT_TRUE(p.ok());
  ExpectAllOptimizersAgree(*p);
}


TEST_F(OptFixture, ExplainAnnotatesEveryStep) {
  BuildDb(gen::ErdosRenyi(200, 600, 4, 19));
  auto p = Pattern::Parse("L0->L1; L1->L2; L2->L3");
  ASSERT_TRUE(p.ok());
  for (int which = 0; which < 2; ++which) {
    auto plan = which == 0 ? OptimizeDp(*p, db_->catalog())
                           : OptimizeDps(*p, db_->catalog());
    ASSERT_TRUE(plan.ok());
    auto exp = ExplainPlan(*p, *plan, db_->catalog());
    ASSERT_TRUE(exp.ok()) << exp.status();
    EXPECT_EQ(exp->steps.size(), plan->steps.size());
    double prev = 0;
    for (const auto& s : exp->steps) {
      EXPECT_GE(s.step_cost, 0.0);
      EXPECT_GE(s.cumulative_cost, prev);
      prev = s.cumulative_cost;
      EXPECT_FALSE(s.description.empty());
    }
    // The explanation's total equals the optimizer's own estimate.
    EXPECT_NEAR(exp->total_cost, plan->estimated_cost,
                1e-6 * std::max(1.0, plan->estimated_cost));
    EXPECT_FALSE(exp->ToString().empty());
  }
}

TEST_F(OptFixture, ExplainRejectsInvalidPlan) {
  BuildDb(gen::ErdosRenyi(60, 150, 3, 23));
  auto p = Pattern::Parse("L0->L1; L1->L2");
  ASSERT_TRUE(p.ok());
  Plan bogus;  // empty plan for a 2-edge pattern
  EXPECT_FALSE(ExplainPlan(*p, bogus, db_->catalog()).ok());
}

TEST_F(OptFixture, ExplainHandlesMissingLabels) {
  BuildDb(gen::ErdosRenyi(60, 150, 3, 29));
  auto p = Pattern::Parse("L0->Nothing");
  ASSERT_TRUE(p.ok());
  auto plan = MakeCanonicalPlan(*p);
  ASSERT_TRUE(plan.ok());
  auto exp = ExplainPlan(*p, *plan, db_->catalog());
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ(exp->result_rows, 0.0);
}


// Enumerates every left-deep DP-expressible plan (all connectivity-
// respecting edge orders; each non-first edge is select if both labels
// bound, else filter+fetch with the forced direction).
void EnumerateDpPlans(const Pattern& p, std::vector<uint32_t>* order,
                      std::vector<bool>* used, uint32_t bound_mask,
                      std::vector<Plan>* out) {
  const auto& edges = p.edges();
  if (order->size() == edges.size()) {
    Plan plan;
    uint32_t bm = 0;
    for (size_t i = 0; i < order->size(); ++i) {
      uint32_t e = (*order)[i];
      bool bf = bm & (1u << edges[e].from), bt = bm & (1u << edges[e].to);
      if (i == 0) {
        plan.steps.push_back(PlanStep::HpsjBase(e));
      } else if (bf && bt) {
        plan.steps.push_back(PlanStep::Select(e));
      } else {
        plan.steps.push_back(PlanStep::Filter({{e, bf}}));
        plan.steps.push_back(PlanStep::Fetch(e, bf));
      }
      bm |= (1u << edges[e].from) | (1u << edges[e].to);
    }
    out->push_back(std::move(plan));
    return;
  }
  for (uint32_t e = 0; e < edges.size(); ++e) {
    if ((*used)[e]) continue;
    uint32_t touch = (1u << edges[e].from) | (1u << edges[e].to);
    if (!order->empty() && !(bound_mask & touch)) continue;
    (*used)[e] = true;
    order->push_back(e);
    EnumerateDpPlans(p, order, used, bound_mask | touch, out);
    order->pop_back();
    (*used)[e] = false;
  }
}

TEST_F(OptFixture, DpIsMinimalOverItsPlanSpace) {
  BuildDb(gen::ErdosRenyi(200, 600, 5, 31));
  for (const char* q :
       {"L0->L1; L1->L2", "L0->L1; L1->L2; L2->L3",
        "L0->L1; L1->L2; L0->L2", "L0->L2; L1->L2; L2->L3",
        "L0->L1; L0->L2; L0->L3"}) {
    auto p = Pattern::Parse(q);
    ASSERT_TRUE(p.ok());
    auto chosen = OptimizeDp(*p, db_->catalog());
    ASSERT_TRUE(chosen.ok());

    std::vector<Plan> space;
    std::vector<uint32_t> order;
    std::vector<bool> used(p->num_edges(), false);
    EnumerateDpPlans(*p, &order, &used, 0, &space);
    ASSERT_FALSE(space.empty());
    double best = std::numeric_limits<double>::infinity();
    for (const Plan& plan : space) {
      ASSERT_TRUE(plan.Validate(*p).ok());
      auto exp = ExplainPlan(*p, plan, db_->catalog());
      ASSERT_TRUE(exp.ok());
      best = std::min(best, exp->total_cost);
    }
    // The DP pick costs exactly the enumerated optimum.
    EXPECT_NEAR(chosen->estimated_cost, best, 1e-6 * std::max(1.0, best))
        << q;
  }
}

TEST_F(OptFixture, DpsNeverCostsMoreThanAnyDpSpacePlan) {
  BuildDb(gen::ErdosRenyi(200, 600, 5, 37));
  auto p = Pattern::Parse("L0->L1; L1->L2; L1->L3");
  ASSERT_TRUE(p.ok());
  auto dps = OptimizeDps(*p, db_->catalog());
  ASSERT_TRUE(dps.ok());
  std::vector<Plan> space;
  std::vector<uint32_t> order;
  std::vector<bool> used(p->num_edges(), false);
  EnumerateDpPlans(*p, &order, &used, 0, &space);
  for (const Plan& plan : space) {
    auto exp = ExplainPlan(*p, plan, db_->catalog());
    ASSERT_TRUE(exp.ok());
    EXPECT_LE(dps->estimated_cost, exp->total_cost * 1.0001);
  }
}

}  // namespace
}  // namespace fgpm
