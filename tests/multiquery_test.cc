// Semantic result cache + batched multi-query execution (ctest label
// `mqo`): canonical plan-cache keys, exact/containment cache hits,
// replay differentials against fresh execution across engines x join
// strategies x thread counts, MatchBatch row-identity, epoch
// invalidation after ApplyEdgeInsert, and the metrics export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

Pattern P(std::string_view text) {
  auto p = Pattern::Parse(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return *p;
}

std::unique_ptr<GraphMatcher> MakeMatcher(const Graph& g, ExecOptions eo) {
  auto m = GraphMatcher::Create(&g, {}, eo);
  EXPECT_TRUE(m.ok()) << m.status();
  return std::move(*m);
}

std::vector<std::vector<NodeId>> SortedRows(Result<MatchResult> r) {
  EXPECT_TRUE(r.ok()) << r.status();
  r->SortRows();
  return std::move(r->rows);
}

TEST(PlanCacheCanonicalKeyTest, TwoSpellingsOneMissThenOneHit) {
  Graph g = gen::ErdosRenyi(200, 700, 4, 5);
  auto m = MakeMatcher(g, {});
  // Different statement order AND different parse-order node numbering
  // — under the old raw-text key these were two distinct entries.
  auto r1 = m->Match("L0->L1; L1->L2; L0->L2");
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(m->plan_cache_misses(), 1u);
  EXPECT_EQ(m->plan_cache_hits(), 0u);
  auto r2 = m->Match("L1->L2; L0->L2; L0->L1");
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(m->plan_cache_misses(), 1u);
  EXPECT_EQ(m->plan_cache_hits(), 1u);
  EXPECT_EQ(m->plan_cache_size(), 1u);
  // The remapped cached plan answers the second spelling correctly.
  r1->SortRows();
  r2->SortRows();
  EXPECT_EQ(r1->rows.size(), r2->rows.size());
}

TEST(ResultCacheTest, ExactHitServesIdenticalRows) {
  Graph g = gen::ErdosRenyi(300, 1000, 4, 7);
  ExecOptions eo;
  eo.use_result_cache = true;
  auto m = MakeMatcher(g, eo);
  auto fresh = m->Match("L0->L1; L1->L2");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->stats.cache_hit, 0);
  // Same pattern, different spelling: exact canonical-key hit. Columns
  // come back in THIS spelling's parse order (L1, L2, L0), so compare
  // against a cache-less execution of the same spelling, not `fresh`.
  auto cached = m->Match("L1->L2; L0->L1");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->stats.cache_hit, 1);
  EXPECT_EQ(fresh->rows.size(), cached->rows.size());
  auto fresh_m = MakeMatcher(g, {});
  cached->SortRows();
  EXPECT_EQ(cached->rows, SortedRows(fresh_m->Match("L1->L2; L0->L1")));
  ASSERT_NE(m->result_cache(), nullptr);
  EXPECT_EQ(m->result_cache()->hits_exact(), 1u);
  EXPECT_GT(m->result_cache()->bytes(), 0u);
}

TEST(ResultCacheTest, ContainmentReplayMatchesFreshExecution) {
  Graph g = gen::ErdosRenyi(300, 1200, 4, 11);
  ExecOptions eo;
  eo.use_result_cache = true;
  eo.result_cache_policy = ResultCachePolicy::kAlways;
  auto cached_m = MakeMatcher(g, eo);
  auto fresh_m = MakeMatcher(g, {});

  // Warm the cache with the general pattern (star), then ask the
  // contained chain: replay must filter the star's rows down to
  // exactly the chain's fresh result (residual edge L1->L2).
  ASSERT_TRUE(cached_m->Match("L0->L1; L0->L2").ok());
  auto replayed = cached_m->Match("L0->L1; L1->L2");
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->stats.cache_hit, 2);
  replayed->SortRows();
  EXPECT_EQ(replayed->rows, SortedRows(fresh_m->Match("L0->L1; L1->L2")));
  EXPECT_EQ(cached_m->result_cache()->hits_containment(), 1u);

  // Closure-equivalent query (chord implied by the chain): zero
  // residual, still row-identical. The replay above promoted the chain
  // into the cache, so the chord is contained by it.
  auto chord = cached_m->Match("L0->L1; L1->L2; L0->L2");
  ASSERT_TRUE(chord.ok());
  EXPECT_EQ(chord->stats.cache_hit, 2);
  chord->SortRows();
  EXPECT_EQ(chord->rows,
            SortedRows(fresh_m->Match("L0->L1; L1->L2; L0->L2")));
}

TEST(ResultCacheTest, LookalikeNeverServedFromCache) {
  Graph g = gen::ErdosRenyi(300, 1200, 4, 13);
  ExecOptions eo;
  eo.use_result_cache = true;
  eo.result_cache_policy = ResultCachePolicy::kAlways;
  auto m = MakeMatcher(g, eo);
  auto fresh_m = MakeMatcher(g, {});
  // Chain cached; the star is NOT contained in it (L0->L2 is not
  // implied), so the matcher must fall back to fresh execution — and
  // produce exactly the fresh rows.
  ASSERT_TRUE(m->Match("L0->L1; L1->L2").ok());
  auto star = m->Match("L0->L1; L0->L2");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->stats.cache_hit, 0);
  star->SortRows();
  EXPECT_EQ(star->rows, SortedRows(fresh_m->Match("L0->L1; L0->L2")));
}

TEST(ResultCacheTest, KNeverPolicyOnlyServesExactHits) {
  Graph g = gen::ErdosRenyi(200, 700, 4, 17);
  ExecOptions eo;
  eo.use_result_cache = true;
  eo.result_cache_policy = ResultCachePolicy::kNever;
  auto m = MakeMatcher(g, eo);
  ASSERT_TRUE(m->Match("L0->L1; L0->L2").ok());
  auto r = m->Match("L0->L1; L1->L2");  // contained, but policy says no
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.cache_hit, 0);
  auto exact = m->Match("L0->L2; L0->L1");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->stats.cache_hit, 1);
}

// Randomized replay differential: warm a cache with general patterns,
// query contained specifics, and assert the replayed rows are
// row-identical to a cache-less matcher — across engines, join
// strategies and thread counts (replay fans out over the pool).
class ReplayDifferential
    : public ::testing::TestWithParam<std::tuple<unsigned, JoinStrategy>> {};

TEST_P(ReplayDifferential, RowIdenticalAcrossEnginesAndThreads) {
  const auto [threads, strategy] = GetParam();
  Graph g = gen::ErdosRenyi(400, 1800, 5, 23);
  const char* generals[] = {"L0->L1; L1->L2", "L0->L1; L0->L2",
                            "L1->L2; L1->L3"};
  const char* specifics[] = {
      "L0->L1; L1->L2; L0->L2",  // chord of the chain (zero residual)
      "L0->L1; L1->L2",          // exact repeat of a general
      "L0->L2; L2->L1",          // NOT contained by the star: fresh path
      "L1->L2; L2->L3",          // chain contained by the L1-star? no:
                                 // L2->L3 unimplied -> residual check
  };
  ExecOptions eo;
  eo.num_threads = threads;
  eo.join_strategy = strategy;
  ExecOptions cached_eo = eo;
  cached_eo.use_result_cache = true;
  cached_eo.result_cache_policy = ResultCachePolicy::kAlways;
  for (Engine e : {Engine::kDps, Engine::kDp, Engine::kCanonical}) {
    auto cached_m = MakeMatcher(g, cached_eo);
    auto fresh_m = MakeMatcher(g, eo);
    for (const char* q : generals) {
      ASSERT_TRUE(cached_m->Match(q, {.engine = e}).ok()) << q;
    }
    for (const char* q : specifics) {
      auto got = SortedRows(cached_m->Match(q, {.engine = e}));
      auto want = SortedRows(fresh_m->Match(q, {.engine = e}));
      EXPECT_EQ(got, want) << EngineName(e) << " t=" << threads << " " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndStrategies, ReplayDifferential,
    ::testing::Combine(::testing::Values(1u, 4u, 8u),
                       ::testing::Values(JoinStrategy::kBinary,
                                         JoinStrategy::kHybrid)));

// MatchBatch: results must be row-identical to per-query Match, with
// dedup and shared seeds doing their accounting.
class BatchDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(BatchDifferential, MatchesSoloExecution) {
  const unsigned threads = GetParam();
  Graph g = gen::ErdosRenyi(400, 1600, 5, 31);
  ExecOptions eo;
  eo.num_threads = threads;
  auto m = MakeMatcher(g, eo);
  auto solo = MakeMatcher(g, eo);
  std::vector<std::string> batch = {
      "L0->L1; L1->L2",
      "L1->L2; L0->L1",          // spelling of #0: dedup
      "L0->L1; L0->L2",          // same scan-base opening as #0 under DPS
      "L1->L2; L1->L3",
      "L0->L1; L1->L2; L0->L2",  // chord
      "L2->L3",
      "L0->L1; L1->L2",          // outright repeat
      "L3->L4; L2->L3",
  };
  BatchStats bs;
  auto results = m->MatchBatch(batch, {}, &bs);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), batch.size());
  EXPECT_EQ(bs.queries, batch.size());
  EXPECT_LT(bs.unique_queries, batch.size());  // dedup happened
  for (size_t i = 0; i < batch.size(); ++i) {
    MatchResult& r = (*results)[i];
    r.SortRows();
    EXPECT_EQ(r.rows, SortedRows(solo->Match(batch[i])))
        << "t=" << threads << " query " << i << ": " << batch[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchDifferential,
                         ::testing::Values(1u, 4u, 8u));

TEST(BatchTest, CacheAndBatchCompose) {
  Graph g = gen::ErdosRenyi(300, 1200, 4, 37);
  ExecOptions eo;
  eo.num_threads = 4;
  eo.use_result_cache = true;
  eo.result_cache_policy = ResultCachePolicy::kAlways;
  auto m = MakeMatcher(g, eo);
  std::vector<std::string> warm = {"L0->L1; L1->L2", "L0->L1; L0->L2"};
  ASSERT_TRUE(m->MatchBatch(warm).ok());
  // Second round: one exact repeat, one contained specific, one new.
  std::vector<std::string> round2 = {"L1->L2; L0->L1",
                                     "L0->L1; L1->L2; L0->L2", "L2->L3"};
  BatchStats bs;
  auto results = m->MatchBatch(round2, {}, &bs);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_EQ((*results)[0].stats.cache_hit, 1);
  EXPECT_EQ((*results)[1].stats.cache_hit, 2);
  EXPECT_EQ((*results)[2].stats.cache_hit, 0);
  EXPECT_EQ(bs.cache_exact, 1u);
  EXPECT_EQ(bs.cache_replay, 1u);
  auto solo = MakeMatcher(g, {});
  for (size_t i = 0; i < round2.size(); ++i) {
    (*results)[i].SortRows();
    EXPECT_EQ((*results)[i].rows, SortedRows(solo->Match(round2[i]))) << i;
  }
}

TEST(BatchTest, RejectsUnplannedEngines) {
  Graph g = gen::ErdosRenyi(50, 150, 3, 41);
  auto m = MakeMatcher(g, {});
  std::vector<std::string> batch = {"L0->L1"};
  EXPECT_EQ(m->MatchBatch(batch, {.engine = Engine::kNaive}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchTest, ProjectionAppliesPerQuery) {
  Graph g = gen::ErdosRenyi(200, 800, 4, 43);
  auto m = MakeMatcher(g, {});
  std::vector<std::string> batch = {"L0->L1; L1->L2"};
  MatchOptions opts;
  opts.projection = {"L2", "L0"};
  auto results = m->MatchBatch(batch, opts);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ((*results)[0].column_labels.size(), 2u);
  EXPECT_EQ((*results)[0].column_labels[0], "L2");
  EXPECT_EQ((*results)[0].column_labels[1], "L0");
}

TEST(EpochInvalidationTest, EdgeInsertDropsBothCaches) {
  Graph g;
  NodeId a = g.AddNode("A");
  NodeId b = g.AddNode("B");
  NodeId c = g.AddNode("C");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  g.Finalize();
  ExecOptions eo;
  eo.use_result_cache = true;
  auto m = MakeMatcher(g, eo);

  auto before = m->Match("A->B; B->C");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->rows.empty());  // no B ~> C yet
  EXPECT_GT(m->plan_cache_size(), 0u);
  // A repeat is served from the result cache...
  auto repeat = m->Match("A->B; B->C");
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->stats.cache_hit, 1);

  // ...until an edge insert moves the database epoch.
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  g.Finalize();
  ASSERT_TRUE(m->db().ApplyEdgeInsert(g, b, c).ok());
  auto after = m->Match("A->B; B->C");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stats.cache_hit, 0);  // stale rows were NOT replayed
  EXPECT_EQ(after->rows.size(), 1u);     // and the new edge is visible
  EXPECT_GE(m->cache_invalidations(), 1u);
}

TEST(CacheMetricsTest, CountersReachTheRegistry) {
  if (!obs::Enabled()) GTEST_SKIP() << "observability disabled";
  auto& reg = obs::MetricsRegistry::Default();
  auto snap = [&](const char* name) {
    return reg.GetCounter(name)->Value();
  };
  const uint64_t hits0 = snap("fgpm_result_cache_hits_total");
  const uint64_t miss0 = snap("fgpm_result_cache_misses_total");
  const uint64_t ins0 = snap("fgpm_result_cache_inserts_total");
  const uint64_t inval0 = snap("fgpm_cache_invalidations_total");

  Graph g = gen::ErdosRenyi(150, 500, 4, 47);
  ExecOptions eo;
  eo.use_result_cache = true;
  auto m = MakeMatcher(g, eo);
  ASSERT_TRUE(m->Match("L0->L1; L1->L2").ok());  // miss + insert
  ASSERT_TRUE(m->Match("L0->L1; L1->L2").ok());  // exact hit
  m->InvalidatePlanCache();

  EXPECT_EQ(snap("fgpm_result_cache_hits_total"), hits0 + 1);
  EXPECT_GE(snap("fgpm_result_cache_misses_total"), miss0 + 1);
  EXPECT_GE(snap("fgpm_result_cache_inserts_total"), ins0 + 1);
  EXPECT_EQ(snap("fgpm_cache_invalidations_total"), inval0 + 1);

  // Both exporters carry the new families.
  const std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("fgpm_result_cache_hits_total"), std::string::npos);
  EXPECT_NE(prom.find("fgpm_result_cache_bytes"), std::string::npos);
  EXPECT_NE(prom.find("fgpm_batch_queries_total"), std::string::npos);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("fgpm_result_cache_misses_total"), std::string::npos);
}

TEST(ResultCacheTest, BudgetEvictsLru) {
  Graph g = gen::ErdosRenyi(300, 1200, 4, 53);
  ExecOptions eo;
  eo.use_result_cache = true;
  eo.result_cache_mb = 0;  // zero budget: nothing is ever cacheable
  auto m = MakeMatcher(g, eo);
  ASSERT_TRUE(m->Match("L0->L1; L1->L2").ok());
  auto r = m->Match("L0->L1; L1->L2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.cache_hit, 0);  // never inserted, never hit
  ASSERT_NE(m->result_cache(), nullptr);
  EXPECT_EQ(m->result_cache()->size(), 0u);
}

}  // namespace
}  // namespace fgpm
