#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/intersect_kernels.h"
#include "common/rng.h"
#include "common/sorted_vector.h"
#include "common/status.h"

namespace fgpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such node");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such node");
  EXPECT_EQ(s.ToString(), "NotFound: no such node");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kCorruption); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseParse(int v, int* out) {
  FGPM_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParse(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseParse(-5, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(3);
  ZipfDistribution zipf(100, 0.9);
  int small = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Sample(&rng);
    EXPECT_LT(v, 100u);
    if (v < 10) ++small;
  }
  // Heavy head: far more than the uniform 10%.
  EXPECT_GT(small, kDraws / 4);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SortedVectorTest, Intersects) {
  std::vector<int> a{1, 3, 5, 7}, b{2, 4, 7, 9}, c{2, 4, 6};
  EXPECT_TRUE(SortedIntersects(a, b));
  EXPECT_FALSE(SortedIntersects(a, c));
  EXPECT_FALSE(SortedIntersects(a, {}));
  EXPECT_FALSE(SortedIntersects<int>({}, {}));
}

TEST(SortedVectorTest, IntersectAndUnion) {
  std::vector<int> a{1, 3, 5, 7}, b{3, 5, 9};
  EXPECT_EQ(SortedIntersect(a, b), (std::vector<int>{3, 5}));
  EXPECT_EQ(SortedUnion(a, b), (std::vector<int>{1, 3, 5, 7, 9}));
}

// Scalar reference implementations for the differential test below: the
// seed's plain two-cursor merge, with no strategy switch.
bool ScalarIntersects(const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
  auto ia = a.begin(), ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

std::vector<uint32_t> ScalarIntersect(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(SortedVectorTest, GallopLowerBoundMatchesStd) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint32_t> v;
    size_t n = rng.NextBounded(64);
    for (size_t i = 0; i < n; ++i) v.push_back(rng.NextBounded(100));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    for (uint32_t key = 0; key <= 100; key += 7) {
      for (size_t lo = 0; lo <= v.size(); ++lo) {
        size_t expect = static_cast<size_t>(
            std::lower_bound(v.begin() + lo, v.end(), key) - v.begin());
        EXPECT_EQ(gallop_internal::GallopLowerBound(v.data(), lo, v.size(),
                                                    key),
                  expect)
            << "lo=" << lo << " key=" << key;
      }
    }
  }
}

// Randomized differential: the adaptive (galloping/branch-light)
// kernels vs the scalar merge, across adversarial size ratios — empty,
// disjoint, subset, equal, and everything the ratio sweep hits in
// between (both sides of the kGallopRatio switch).
TEST(SortedVectorTest, GallopDifferentialAdversarialShapes) {
  Rng rng(4321);
  auto random_sorted = [&](size_t n, uint32_t universe) {
    std::vector<uint32_t> v;
    for (size_t i = 0; i < n; ++i) v.push_back(rng.NextBounded(universe));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  const size_t sizes[] = {0, 1, 2, 3, 15, 16, 17, 100, 1000, 5000};
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      for (int dense = 0; dense < 2; ++dense) {
        // Dense universe forces overlaps; sparse one favors disjoint.
        uint32_t universe =
            dense ? static_cast<uint32_t>(na + nb + 1) * 2 : 1u << 30;
        std::vector<uint32_t> a = random_sorted(na, universe);
        std::vector<uint32_t> b = random_sorted(nb, universe);
        EXPECT_EQ(SortedIntersects(a, b), ScalarIntersects(a, b));
        EXPECT_EQ(SortedIntersect(a, b), ScalarIntersect(a, b));
        // Aliased shapes: equal inputs and a strict subset.
        EXPECT_TRUE(a.empty() || SortedIntersects(a, a));
        EXPECT_EQ(SortedIntersect(a, a), a);
        std::vector<uint32_t> sub;
        for (size_t i = 0; i < a.size(); i += 3) sub.push_back(a[i]);
        EXPECT_EQ(SortedIntersect(a, sub), sub);
        EXPECT_EQ(SortedIntersect(sub, a), sub);
        if (!sub.empty()) EXPECT_TRUE(SortedIntersects(sub, a));
      }
    }
  }
}

TEST(SortedVectorTest, IntersectIntoReusesBuffer) {
  std::vector<uint32_t> a{1, 2, 3, 4, 5}, b{2, 4, 6}, out{9, 9, 9, 9};
  SortedIntersectInto(a, b, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{2, 4}));
  SortedIntersectInto(a, std::vector<uint32_t>{}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SortedVectorTest, InsertKeepsOrderAndDedups) {
  std::vector<int> v;
  EXPECT_TRUE(SortedInsert(&v, 5));
  EXPECT_TRUE(SortedInsert(&v, 1));
  EXPECT_TRUE(SortedInsert(&v, 3));
  EXPECT_FALSE(SortedInsert(&v, 3));
  EXPECT_EQ(v, (std::vector<int>{1, 3, 5}));
  EXPECT_TRUE(SortedContains(v, 3));
  EXPECT_FALSE(SortedContains(v, 4));
}

TEST(HashTest, PackPairRoundTrip) {
  uint64_t k = PackPair(0xdeadbeef, 0xfeedface);
  EXPECT_EQ(PairFirst(k), 0xdeadbeefu);
  EXPECT_EQ(PairSecond(k), 0xfeedfaceu);
}

TEST(HashTest, RowHashDistinguishesRows) {
  RowHash h;
  EXPECT_NE(h({1, 2, 3}), h({1, 2, 4}));
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
}

// RAII guard restoring the runtime kernel dispatch (so a failing test
// can't leave a forced kernel behind for later tests).
struct KernelGuard {
  ~KernelGuard() { SetIntersectKernel(IntersectKernel::kAuto); }
};

// Every intersection kernel — the seed merge, the branch-free scalar,
// SSE and AVX2 — must agree with the plain two-cursor reference on
// adversarial shapes: sizes straddling the SIMD block widths (4 and 8)
// and their remainders, dense/sparse universes, subsets, equal inputs.
// Kernels an old CPU lacks are skipped (SetIntersectKernel refuses).
TEST(IntersectKernelTest, ForcedKernelsMatchScalarReference) {
  KernelGuard guard;
  Rng rng(20240805);
  auto random_set = [&](size_t n, uint32_t universe) {
    std::vector<uint32_t> v;
    for (size_t i = 0; i < n; ++i) v.push_back(rng.NextBounded(universe));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  const size_t sizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 200};
  const IntersectKernel kernels[] = {
      IntersectKernel::kSeed, IntersectKernel::kScalar,
      IntersectKernel::kSse, IntersectKernel::kAvx2};
  for (IntersectKernel k : kernels) {
    if (!SetIntersectKernel(k)) {
      continue;  // ISA not available on this host
    }
    SCOPED_TRACE(IntersectKernelName(k));
    for (size_t na : sizes) {
      for (size_t nb : sizes) {
        for (int dense = 0; dense < 2; ++dense) {
          uint32_t universe =
              dense ? static_cast<uint32_t>(na + nb + 1) * 2 : 1u << 30;
          std::vector<uint32_t> a = random_set(na, universe);
          std::vector<uint32_t> b = random_set(nb, universe);
          std::vector<uint32_t> expect = ScalarIntersect(a, b);
          EXPECT_EQ(IntersectsU32(a.data(), a.size(), b.data(), b.size()),
                    !expect.empty())
              << "na=" << a.size() << " nb=" << b.size();
          std::vector<uint32_t> got(std::min(a.size(), b.size()) +
                                    kIntersectPad);
          got.resize(
              IntersectU32(a.data(), a.size(), b.data(), b.size(),
                           got.data()));
          EXPECT_EQ(got, expect) << "na=" << a.size() << " nb=" << b.size();
          // Aliased input: intersect with itself is identity.
          got.assign(a.size() + kIntersectPad, 0);
          got.resize(
              IntersectU32(a.data(), a.size(), a.data(), a.size(),
                           got.data()));
          EXPECT_EQ(got, a);
        }
      }
    }
  }
}

// Single-element overlap at every alignment within the SIMD blocks: the
// match can sit in any lane of any block-pair combination.
TEST(IntersectKernelTest, SingleMatchEveryLane) {
  KernelGuard guard;
  const IntersectKernel kernels[] = {
      IntersectKernel::kSeed, IntersectKernel::kScalar,
      IntersectKernel::kSse, IntersectKernel::kAvx2};
  for (IntersectKernel k : kernels) {
    if (!SetIntersectKernel(k)) continue;
    SCOPED_TRACE(IntersectKernelName(k));
    for (size_t n = 1; n <= 24; ++n) {
      for (size_t pa = 0; pa < n; ++pa) {
        for (size_t pb = 0; pb < n; ++pb) {
          // a = evens, b = odds — disjoint — except one planted match.
          std::vector<uint32_t> a, b;
          for (size_t i = 0; i < n; ++i) a.push_back(2 * i);
          for (size_t i = 0; i < n; ++i) b.push_back(2 * i + 1);
          uint32_t match = a[pa];
          b[pb] = match;
          std::sort(b.begin(), b.end());
          b.erase(std::unique(b.begin(), b.end()), b.end());
          EXPECT_TRUE(IntersectsU32(a.data(), a.size(), b.data(), b.size()))
              << "n=" << n << " pa=" << pa << " pb=" << pb;
          std::vector<uint32_t> got(std::min(a.size(), b.size()) +
                                    kIntersectPad);
          got.resize(IntersectU32(a.data(), a.size(), b.data(), b.size(),
                                  got.data()));
          EXPECT_EQ(got, std::vector<uint32_t>{match});
        }
      }
    }
  }
}

// The kernel switch itself: forcing reports the active kernel, kAuto
// restores hardware dispatch.
TEST(IntersectKernelTest, ForceAndRestore) {
  KernelGuard guard;
  ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kScalar));
  EXPECT_EQ(ActiveIntersectKernel(), IntersectKernel::kScalar);
  ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kSeed));
  EXPECT_EQ(ActiveIntersectKernel(), IntersectKernel::kSeed);
  ASSERT_TRUE(SetIntersectKernel(IntersectKernel::kAuto));
  EXPECT_NE(ActiveIntersectKernel(), IntersectKernel::kSeed);
}

// The high-level SortedIntersects/SortedIntersectInto entry points ride
// the dispatched kernels for uint32 and must agree with the scalar
// reference under every forced kernel (this is the path the reachability
// probes and the HPSJ filter take).
TEST(IntersectKernelTest, SortedVectorEntryPointsUnderForcedKernels) {
  KernelGuard guard;
  Rng rng(5150);
  auto random_set = [&](size_t n, uint32_t universe) {
    std::vector<uint32_t> v;
    for (size_t i = 0; i < n; ++i) v.push_back(rng.NextBounded(universe));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  const IntersectKernel kernels[] = {
      IntersectKernel::kSeed, IntersectKernel::kScalar,
      IntersectKernel::kSse, IntersectKernel::kAvx2};
  for (IntersectKernel k : kernels) {
    if (!SetIntersectKernel(k)) continue;
    SCOPED_TRACE(IntersectKernelName(k));
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<uint32_t> a = random_set(rng.NextBounded(300), 500);
      std::vector<uint32_t> b = random_set(rng.NextBounded(300), 500);
      EXPECT_EQ(SortedIntersects(a, b), ScalarIntersects(a, b));
      std::vector<uint32_t> out;
      SortedIntersectInto(a, b, &out);
      EXPECT_EQ(out, ScalarIntersect(a, b));
    }
  }
}

// ---- k-way intersection primitive (WCOJ binds) ---------------------------

// Owns a sorted set plus its optional chunked-bitmap sidecar so the
// SortedSetView's borrowed pointers stay valid.
struct OwnedSet {
  std::vector<uint32_t> data;
  std::vector<uint32_t> chunk_ids;
  std::vector<uint64_t> words;
  bool with_bitmap = false;

  explicit OwnedSet(std::vector<uint32_t> d, bool bitmap = false)
      : data(std::move(d)), with_bitmap(bitmap) {
    if (with_bitmap) {
      BuildChunkedBitmap(data.data(), data.size(), &chunk_ids, &words);
    }
  }
  SortedSetView View() const {
    SortedSetView v;
    v.data = data.data();
    v.size = data.size();
    if (with_bitmap) {
      v.chunk_ids = chunk_ids.data();
      v.chunk_words = words.data();
      v.num_chunks = chunk_ids.size();
    }
    return v;
  }
};

std::vector<uint32_t> KWayOracle(const std::vector<OwnedSet>& sets) {
  std::vector<uint32_t> acc = sets[0].data;
  for (size_t i = 1; i < sets.size(); ++i) acc = ScalarIntersect(acc, sets[i].data);
  return acc;
}

std::vector<uint32_t> RunKWay(const std::vector<OwnedSet>& sets,
                              KWayStats* stats = nullptr) {
  std::vector<SortedSetView> views;
  size_t smallest = ~size_t{0};
  for (const OwnedSet& s : sets) {
    views.push_back(s.View());
    smallest = std::min(smallest, s.data.size());
  }
  std::vector<uint32_t> out(smallest + kIntersectPad);
  std::vector<uint32_t> tmp(smallest + kIntersectPad);
  size_t n =
      IntersectKWayU32(views.data(), views.size(), out.data(), tmp.data(), stats);
  out.resize(n);
  return out;
}

TEST(KWayIntersectTest, RandomizedDifferentialVsOracle) {
  Rng rng(20260808);
  for (int iter = 0; iter < 400; ++iter) {
    size_t k = 2 + rng.NextBounded(5);  // k in {2..6}
    uint32_t universe = 1 + rng.NextBounded(2000);
    std::vector<OwnedSet> sets;
    for (size_t i = 0; i < k; ++i) {
      size_t n = rng.NextBounded(600);
      std::vector<uint32_t> v;
      for (size_t j = 0; j < n; ++j) v.push_back(rng.NextBounded(universe));
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      // Mix bitmap-backed and plain sets to hit all three pruning modes
      // (membership, galloping, SIMD merge) within one intersection.
      sets.emplace_back(std::move(v), rng.NextBounded(2) == 0);
    }
    EXPECT_EQ(RunKWay(sets), KWayOracle(sets)) << "iter " << iter;
  }
}

TEST(KWayIntersectTest, EmptySetShortCircuits) {
  KWayStats stats;
  std::vector<OwnedSet> sets;
  sets.emplace_back(std::vector<uint32_t>{1, 2, 3});
  sets.emplace_back(std::vector<uint32_t>{});
  sets.emplace_back(std::vector<uint32_t>{2, 3, 4});
  EXPECT_TRUE(RunKWay(sets, &stats).empty());
  // The empty set sorts first: no candidate is ever probed.
  EXPECT_EQ(stats.probes, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(KWayIntersectTest, SingleSetCopies) {
  std::vector<OwnedSet> sets;
  sets.emplace_back(std::vector<uint32_t>{5, 9, 100});
  EXPECT_EQ(RunKWay(sets), (std::vector<uint32_t>{5, 9, 100}));
}

TEST(KWayIntersectTest, BitmapChunkBoundaries) {
  // Values straddling the 256-value chunk granularity and the 64-bit
  // word granularity inside a chunk.
  std::vector<uint32_t> big;
  for (uint32_t v : {0u, 63u, 64u, 127u, 128u, 191u, 192u, 255u, 256u, 511u,
                     512u, 65535u, 65536u, 0xffffff00u, 0xffffffffu}) {
    big.push_back(v);
  }
  std::vector<OwnedSet> sets;
  sets.emplace_back(std::vector<uint32_t>{0, 64, 255, 256, 512, 65536,
                                          0xffffff00u, 0xffffffffu});
  sets.emplace_back(big, /*bitmap=*/true);
  EXPECT_EQ(RunKWay(sets),
            (std::vector<uint32_t>{0, 64, 255, 256, 512, 65536, 0xffffff00u,
                                   0xffffffffu}));
  // Near-misses around chunk boundaries must not leak through.
  std::vector<OwnedSet> miss;
  miss.emplace_back(std::vector<uint32_t>{1, 62, 65, 254, 257, 65537});
  miss.emplace_back(big, /*bitmap=*/true);
  EXPECT_TRUE(RunKWay(miss).empty());
}

TEST(KWayIntersectTest, BitmapOnTinySetMatchesPlain) {
  // A sidecar on a set smaller than the 2x membership threshold must
  // not change the result (the kernel just chooses another mode).
  Rng rng(77);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<uint32_t> a, b;
    for (size_t j = 0; j < 1 + rng.NextBounded(4); ++j)
      a.push_back(rng.NextBounded(300));
    for (size_t j = 0; j < 1 + rng.NextBounded(4); ++j)
      b.push_back(rng.NextBounded(300));
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    std::vector<OwnedSet> plain, mapped;
    plain.emplace_back(a);
    plain.emplace_back(b);
    mapped.emplace_back(a, true);
    mapped.emplace_back(b, true);
    EXPECT_EQ(RunKWay(plain), RunKWay(mapped));
  }
}

TEST(KWayIntersectTest, GallopRatioBoundary) {
  // Sizes on both sides of the kGallopRatio * (n + 1) switch between
  // galloping and the SIMD merge.
  Rng rng(31337);
  for (size_t small : {1ul, 2ul, 4ul}) {
    for (size_t factor : {15ul, 16ul, 17ul, 64ul}) {
      std::vector<uint32_t> a, b;
      for (size_t j = 0; j < small; ++j) a.push_back(rng.NextBounded(100000));
      for (size_t j = 0; j < small * factor + 1; ++j)
        b.push_back(rng.NextBounded(100000));
      b.insert(b.end(), a.begin(), a.end());  // force overlap
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
      std::sort(b.begin(), b.end());
      b.erase(std::unique(b.begin(), b.end()), b.end());
      std::vector<OwnedSet> sets;
      sets.emplace_back(a);
      sets.emplace_back(b);
      EXPECT_EQ(RunKWay(sets), ScalarIntersect(a, b));
    }
  }
}

TEST(KWayIntersectTest, StatsCountProbesAndHits) {
  KWayStats stats;
  std::vector<OwnedSet> sets;
  sets.emplace_back(std::vector<uint32_t>{1, 2, 3, 4});       // driver
  sets.emplace_back(std::vector<uint32_t>{2, 3, 4, 5, 6});    // survives 3
  sets.emplace_back(std::vector<uint32_t>{3, 4, 7, 8, 9, 10});
  EXPECT_EQ(RunKWay(sets, &stats), (std::vector<uint32_t>{3, 4}));
  // Stage 1 probes the 4 driver values, stage 2 the 3 survivors.
  EXPECT_EQ(stats.probes, 7u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(KWayIntersectTest, ForcedKernelDifferential) {
  const IntersectKernel kernels[] = {
      IntersectKernel::kSeed, IntersectKernel::kScalar,
      IntersectKernel::kSse, IntersectKernel::kAvx2};
  Rng rng(606);
  std::vector<std::vector<OwnedSet>> cases;
  std::vector<std::vector<uint32_t>> expected;
  for (int iter = 0; iter < 40; ++iter) {
    size_t k = 2 + rng.NextBounded(4);
    std::vector<OwnedSet> sets;
    for (size_t i = 0; i < k; ++i) {
      std::vector<uint32_t> v;
      for (size_t j = 0; j < rng.NextBounded(400); ++j)
        v.push_back(rng.NextBounded(700));
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      sets.emplace_back(std::move(v), i % 2 == 1);
    }
    expected.push_back(KWayOracle(sets));
    cases.push_back(std::move(sets));
  }
  for (IntersectKernel k : kernels) {
    if (!SetIntersectKernel(k)) continue;
    SCOPED_TRACE(IntersectKernelName(k));
    for (size_t i = 0; i < cases.size(); ++i) {
      EXPECT_EQ(RunKWay(cases[i]), expected[i]) << "case " << i;
    }
  }
  SetIntersectKernel(IntersectKernel::kAuto);
}

}  // namespace
}  // namespace fgpm
