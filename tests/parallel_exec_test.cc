// Parallel execution engine tests:
//  * ThreadPool / ParallelFor primitives (coverage, chunk indexing,
//    sequential inlining).
//  * Batch-parallel 2-hop construction answers reachability exactly like
//    the sequential builder.
//  * Randomized differential: for several seeds x graph families, the
//    R-join engines at 1, 2 and 8 threads produce the same result sets
//    as the naive matcher — and bit-identical rows across thread counts
//    (the determinism contract of operators.h, stronger than set
//    equality).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "reach/two_hop.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

TEST(ThreadPoolTest, NumChunks) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 4), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 4), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(4, 4), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(5, 4), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(8, 4), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(9, 4), 3u);
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(3), 3u);
  EXPECT_GE(ResolveThreads(0), 1u);  // hardware_concurrency, at least 1
}

// Every index in [0, n) is visited exactly once, each chunk sees the
// range implied by its chunk id, regardless of worker count.
void CheckCoverage(unsigned threads, size_t n, size_t chunk_size) {
  ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  std::atomic<size_t> chunks_run{0};
  pool.ParallelFor(n, chunk_size, [&](unsigned worker, size_t chunk,
                                      size_t begin, size_t end) {
    EXPECT_LT(worker, pool.size());
    EXPECT_EQ(begin, chunk * chunk_size);
    EXPECT_EQ(end, std::min(n, begin + chunk_size));
    ++chunks_run;
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(chunks_run.load(), ThreadPool::NumChunks(n, chunk_size));
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 2u, 5u, 8u}) {
    for (size_t n : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
      CheckCoverage(threads, n, 3);
      CheckCoverage(threads, n, 64);
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(100, 7, [&](unsigned, size_t, size_t b, size_t e) {
      uint64_t local = 0;
      for (size_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 100ull * 99 / 2);
  }
}

TEST(TwoHopParallelTest, BatchParallelBuildAnswersLikeSequential) {
  for (uint64_t seed : {1ull, 7ull}) {
    Graph g = gen::ErdosRenyi(120, 400, 4, seed);  // cyclic: exercises SCCs
    TwoHopLabeling seq = BuildTwoHopPruned(g, 1);
    for (unsigned threads : {2u, 4u}) {
      TwoHopLabeling par = BuildTwoHopPruned(g, threads);
      for (NodeId u = 0; u < g.NumNodes(); ++u) {
        for (NodeId v = 0; v < g.NumNodes(); ++v) {
          ASSERT_EQ(par.Reaches(u, v), seq.Reaches(u, v))
              << "seed " << seed << " threads " << threads << " pair (" << u
              << "," << v << ")";
        }
      }
    }
  }
}

enum class GraphKind { kErdosRenyi, kRandomDag, kXmark };

const char* GraphKindName(GraphKind k) {
  switch (k) {
    case GraphKind::kErdosRenyi:
      return "ErdosRenyi";
    case GraphKind::kRandomDag:
      return "RandomDag";
    case GraphKind::kXmark:
      return "Xmark";
  }
  return "?";
}

Graph MakeGraph(GraphKind kind, uint64_t seed) {
  switch (kind) {
    case GraphKind::kErdosRenyi:
      return gen::ErdosRenyi(150, 480, 5, seed);
    case GraphKind::kRandomDag:
      return gen::RandomDag(170, 2.4, 5, seed);
    case GraphKind::kXmark: {
      gen::XMarkOptions opts;
      opts.factor = 0.0008;
      opts.seed = seed;
      return gen::XMarkLike(opts);
    }
  }
  __builtin_unreachable();
}

using ParamT = std::tuple<GraphKind, uint64_t /*seed*/>;

class ParallelDifferential : public ::testing::TestWithParam<ParamT> {};

// Engines at 1, 2 and 8 threads vs the naive matcher, and exact
// row-for-row equality between thread counts.
TEST_P(ParallelDifferential, ThreadCountsAgreeWithNaive) {
  auto [kind, seed] = GetParam();
  Graph g = MakeGraph(kind, seed);

  // One matcher per thread count over the same database build.
  const unsigned kThreads[] = {1, 2, 8};
  std::vector<std::unique_ptr<GraphMatcher>> matchers;
  for (unsigned t : kThreads) {
    auto m = GraphMatcher::Create(&g, {}, ExecOptions{.num_threads = t});
    ASSERT_TRUE(m.ok()) << m.status();
    matchers.push_back(std::move(*m));
  }

  auto patterns = workload::RandomPatterns(g, /*count=*/5, /*nodes=*/3,
                                           /*extra_edges=*/1, seed * 7 + 1);
  auto more = workload::RandomPatterns(g, /*count=*/3, /*nodes=*/4,
                                       /*extra_edges=*/1, seed * 13 + 5);
  patterns.insert(patterns.end(), more.begin(), more.end());
  ASSERT_FALSE(patterns.empty());

  for (const auto& p : patterns) {
    Result<MatchResult> expect =
        (*matchers[0]).Match(p, {.engine = Engine::kNaive});
    ASSERT_TRUE(expect.ok());
    expect->SortRows();
    for (Engine e : {Engine::kDps, Engine::kDp, Engine::kCanonical}) {
      std::vector<std::vector<NodeId>> first_rows;
      for (size_t i = 0; i < matchers.size(); ++i) {
        auto r = matchers[i]->Match(p, {.engine = e});
        ASSERT_TRUE(r.ok()) << EngineName(e) << ": " << r.status();
        // Determinism: identical rows in identical order per thread count.
        if (i == 0) {
          first_rows = r->rows;
        } else {
          EXPECT_EQ(r->rows, first_rows)
              << GraphKindName(kind) << " seed " << seed << " engine "
              << EngineName(e) << " threads " << kThreads[i]
              << " differs from single-threaded rows, pattern "
              << p.ToString();
        }
        r->SortRows();
        EXPECT_EQ(r->rows, expect->rows)
            << GraphKindName(kind) << " seed " << seed << " engine "
            << EngineName(e) << " threads " << kThreads[i] << " pattern "
            << p.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndSeeds, ParallelDifferential,
    ::testing::Combine(::testing::Values(GraphKind::kErdosRenyi,
                                         GraphKind::kRandomDag,
                                         GraphKind::kXmark),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<ParamT>& info) {
      return std::string(GraphKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Parallel database build (2-hop cover at build_threads > 1) feeding the
// parallel engine still matches ground truth end to end.
TEST(ParallelBuildTest, ParallelCoverParallelEngineMatchesNaive) {
  Graph g = gen::ErdosRenyi(140, 460, 4, 11);
  GraphDatabaseOptions db_options;
  db_options.build_threads = 4;
  auto m = GraphMatcher::Create(&g, db_options, ExecOptions{.num_threads = 4});
  ASSERT_TRUE(m.ok()) << m.status();
  auto patterns = workload::RandomPatterns(g, 6, 3, 1, 99);
  for (const auto& p : patterns) {
    auto expect = (*m)->Match(p, {.engine = Engine::kNaive});
    auto got = (*m)->Match(p, {.engine = Engine::kDps});
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok()) << got.status();
    expect->SortRows();
    got->SortRows();
    EXPECT_EQ(got->rows, expect->rows) << p.ToString();
  }
}

}  // namespace
}  // namespace fgpm
