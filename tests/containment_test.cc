// Canonicalization and containment unit tests (query/containment.h):
// every spelling of a pattern collides on one canonical key, and
// Contains() is sound — it never fabricates a mapping for a pattern
// pair that is not actually containable under reachability semantics.
#include <gtest/gtest.h>

#include <optional>

#include "query/containment.h"
#include "query/pattern.h"

namespace fgpm {
namespace {

Pattern P(std::string_view text) {
  auto p = Pattern::Parse(text);
  EXPECT_TRUE(p.ok()) << text << ": " << p.status();
  return *p;
}

TEST(CanonicalizeTest, SpellingsCollide) {
  // Same pattern four ways: statement order, chain grouping, and the
  // parse-order node numbering all differ; the canonical key must not.
  const char* spellings[] = {
      "A->B; B->C; A->C",
      "B->C; A->C; A->B",
      "A->C; A->B->C",
      "A->B->C; A->C",
  };
  const CanonicalForm base = Canonicalize(P(spellings[0]));
  for (const char* text : spellings) {
    CanonicalForm c = Canonicalize(P(text));
    EXPECT_EQ(c.key, base.key) << text;
    EXPECT_EQ(c.pattern.ToString(), base.pattern.ToString()) << text;
  }
}

TEST(CanonicalizeTest, DistinctPatternsKeepDistinctKeys) {
  EXPECT_NE(Canonicalize(P("A->B")).key, Canonicalize(P("B->A")).key);
  EXPECT_NE(Canonicalize(P("A->B; B->C")).key,
            Canonicalize(P("A->B; A->C")).key);
  // Closure-equivalent, but NOT edge-set-equal: distinct keys (they
  // meet through containment, not key equality).
  EXPECT_NE(Canonicalize(P("A->B; B->C; A->C")).key,
            Canonicalize(P("A->B; B->C")).key);
}

TEST(CanonicalizeTest, MapsRoundTrip) {
  const Pattern p = P("C->A; A->B");
  const CanonicalForm c = Canonicalize(p);
  // Canonical numbering is sorted-label order: A=0, B=1, C=2.
  ASSERT_EQ(c.pattern.num_nodes(), 3u);
  EXPECT_EQ(c.pattern.label(0), "A");
  EXPECT_EQ(c.pattern.label(1), "B");
  EXPECT_EQ(c.pattern.label(2), "C");
  // node_map / edge_map translate original -> canonical; the inverses
  // undo them exactly.
  const auto inv_n = c.InverseNodeMap();
  for (PatternNodeId i = 0; i < p.num_nodes(); ++i) {
    EXPECT_EQ(inv_n[c.node_map[i]], i);
    EXPECT_EQ(p.label(i), c.pattern.label(c.node_map[i]));
  }
  const auto inv_e = c.InverseEdgeMap();
  for (uint32_t e = 0; e < p.num_edges(); ++e) {
    EXPECT_EQ(inv_e[c.edge_map[e]], e);
    const PatternEdge& orig = p.edges()[e];
    const PatternEdge& canon = c.pattern.edges()[c.edge_map[e]];
    EXPECT_EQ(c.node_map[orig.from], canon.from);
    EXPECT_EQ(c.node_map[orig.to], canon.to);
  }
  // Canonical edges are sorted by (from, to).
  for (size_t e = 1; e < c.pattern.num_edges(); ++e) {
    const PatternEdge& a = c.pattern.edges()[e - 1];
    const PatternEdge& b = c.pattern.edges()[e];
    EXPECT_TRUE(a.from < b.from || (a.from == b.from && a.to < b.to));
  }
}

TEST(CanonicalizeTest, SingleLabelPattern) {
  Pattern p;
  p.AddNode("Z");
  const CanonicalForm c = Canonicalize(p);
  EXPECT_EQ(c.pattern.num_nodes(), 1u);
  EXPECT_EQ(c.pattern.num_edges(), 0u);
  EXPECT_EQ(c.key, Canonicalize(p).key);
}

TEST(ContainmentTest, Reflexive) {
  const Pattern p = P("A->B; B->C; A->C");
  auto m = Contains(p, p);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->residual.empty());
  for (PatternNodeId i = 0; i < p.num_nodes(); ++i) {
    EXPECT_EQ(m->general_to_specific[i], i);
  }
}

TEST(ContainmentTest, ClosureEquivalentHasEmptyResidual) {
  // The chord A->C is implied by the chain: both directions of the
  // containment check succeed and neither needs a residual re-check.
  const Pattern chain = P("A->B; B->C");
  const Pattern chord = P("A->B; B->C; A->C");
  auto m1 = Contains(chain, chord);
  ASSERT_TRUE(m1.has_value());
  EXPECT_TRUE(m1->residual.empty());
  auto m2 = Contains(chord, chain);
  ASSERT_TRUE(m2.has_value());
  EXPECT_TRUE(m2->residual.empty());
}

TEST(ContainmentTest, ResidualEdgesAreExactlyTheUnimpliedOnes) {
  // general: A->B, A->C (a star); specific: A->B, B->C (a chain).
  // Every general edge is implied by the chain's closure (A->C via B),
  // but B->C is NOT implied by the star — it must be re-checked.
  const Pattern general = P("A->B; A->C");
  const Pattern specific = P("A->B; B->C");
  auto m = Contains(general, specific);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->residual.size(), 1u);
  EXPECT_EQ(specific.label(m->residual[0].from), "B");
  EXPECT_EQ(specific.label(m->residual[0].to), "C");
}

TEST(ContainmentTest, LookalikesAreNotContained) {
  // Same label sets, structurally close — but a tuple satisfying the
  // specific side need not satisfy the general side, so Contains must
  // refuse (returning a mapping here would serve wrong rows).
  // Chain does not contain the star: B->C is not implied by A->B, A->C.
  EXPECT_FALSE(Contains(P("A->B; B->C"), P("A->B; A->C")).has_value());
  // Reversed edge.
  EXPECT_FALSE(Contains(P("A->B"), P("B->A")).has_value());
  // Reversed middle of a chain.
  EXPECT_FALSE(
      Contains(P("A->B; B->C; C->D"), P("A->B; C->B; C->D")).has_value());
}

TEST(ContainmentTest, DifferentLabelSetsAreNeverContained) {
  // Projection is not sound under reachability semantics, so label-set
  // mismatches are refused in both directions even when one edge set
  // embeds into the other.
  EXPECT_FALSE(Contains(P("A->B"), P("A->B; B->C")).has_value());
  EXPECT_FALSE(Contains(P("A->B; B->C"), P("A->B")).has_value());
  EXPECT_FALSE(Contains(P("A->B"), P("A->C")).has_value());
}

TEST(ContainmentTest, SingleNodePatterns) {
  Pattern a1, a2, b;
  a1.AddNode("A");
  a2.AddNode("A");
  b.AddNode("B");
  auto m = Contains(a1, a2);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->residual.empty());
  EXPECT_FALSE(Contains(a1, b).has_value());
}

TEST(ContainmentTest, SelfLoopsAndDuplicateEdgesAreUnrepresentable) {
  // The canonical-form and containment arguments lean on patterns
  // rejecting self-loops and duplicate edges (a pattern's edge multiset
  // is a set, and (other-label, direction) identifies an edge uniquely
  // — exec/batch.cc's seed translation depends on that). Pin the
  // invariant here so a parser change can't silently invalidate them.
  Pattern p;
  PatternNodeId a = p.AddNode("A");
  PatternNodeId b = p.AddNode("B");
  EXPECT_FALSE(p.AddEdge(a, a).ok());
  ASSERT_TRUE(p.AddEdge(a, b).ok());
  EXPECT_FALSE(p.AddEdge(a, b).ok());
  // Re-adding a label dedups instead of minting a second node, so
  // "repeated edge labels" collapse to the same edge and stay rejected.
  EXPECT_EQ(p.AddNode("A"), a);
  EXPECT_FALSE(p.AddEdge(a, b).ok());
}

}  // namespace
}  // namespace fgpm
