// End-to-end scenarios across the whole stack: generators -> database ->
// optimizers -> engines -> results.
#include <gtest/gtest.h>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "workload/datasets.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

TEST(IntegrationTest, XmarkSuitesDpEqualsDps) {
  gen::XMarkOptions opts;
  opts.factor = 0.004;
  Graph g = gen::XMarkLike(opts);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());

  auto all = workload::XmarkPathPatterns();
  auto trees = workload::XmarkTreePatterns();
  all.insert(all.end(), trees.begin(), trees.end());
  auto q4 = workload::XmarkGraphPatterns4();
  all.insert(all.end(), q4.begin(), q4.end());

  for (const auto& p : all) {
    auto dp = (*matcher)->Match(p, {.engine = Engine::kDp});
    auto dps = (*matcher)->Match(p, {.engine = Engine::kDps});
    ASSERT_TRUE(dp.ok()) << p.ToString();
    ASSERT_TRUE(dps.ok()) << p.ToString();
    dp->SortRows();
    dps->SortRows();
    EXPECT_EQ(dp->rows, dps->rows) << p.ToString();
  }
}

TEST(IntegrationTest, AcyclicXmarkAllEnginesOnPathSuite) {
  gen::XMarkOptions opts;
  opts.factor = 0.0015;
  opts.acyclic = true;
  Graph g = gen::XMarkLike(opts);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  // First three path patterns on every engine including TSD.
  auto paths = workload::XmarkPathPatterns();
  for (int i = 0; i < 3; ++i) {
    Result<MatchResult> expect =
        (*matcher)->Match(paths[i], {.engine = Engine::kNaive});
    ASSERT_TRUE(expect.ok());
    expect->SortRows();
    for (Engine e : {Engine::kDps, Engine::kDp, Engine::kIntDp, Engine::kTsd}) {
      auto r = (*matcher)->Match(paths[i], {.engine = e});
      ASSERT_TRUE(r.ok()) << EngineName(e);
      r->SortRows();
      EXPECT_EQ(r->rows, expect->rows)
          << EngineName(e) << " on " << paths[i].ToString();
    }
  }
}

TEST(IntegrationTest, SupplyChainMotivatingExample) {
  Graph g = gen::SupplyChain(60, 11);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  // Section 1: Supplier supplies Retailer and Wholeseller directly or
  // indirectly; all three are served by the same Bank.
  auto r = (*matcher)->Match(
      "Supplier->Retailer; Supplier->Wholeseller; Bank->Supplier; "
      "Bank->Retailer; Bank->Wholeseller");
  ASSERT_TRUE(r.ok());
  auto naive = (*matcher)->Match(
      "Supplier->Retailer; Supplier->Wholeseller; Bank->Supplier; "
      "Bank->Retailer; Bank->Wholeseller",
      {.engine = Engine::kNaive});
  ASSERT_TRUE(naive.ok());
  r->SortRows();
  naive->SortRows();
  EXPECT_EQ(r->rows, naive->rows);
}

TEST(IntegrationTest, CitationNetworkScenario) {
  Graph g = gen::CitationNetwork(400, 13);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  // An author whose Database paper (transitively) cites a Theory paper.
  auto r = (*matcher)->Match("Author->Database; Database->Theory");
  ASSERT_TRUE(r.ok());
  auto naive = (*matcher)->Match("Author->Database; Database->Theory",
                                 {.engine = Engine::kNaive});
  ASSERT_TRUE(naive.ok());
  r->SortRows();
  naive->SortRows();
  EXPECT_EQ(r->rows, naive->rows);
  EXPECT_GT(r->rows.size(), 0u);
}

TEST(IntegrationTest, DatasetSeriesBuildsAndAnswers) {
  // Tiny rendition of the Table 2 series: build the five datasets at a
  // small scale and run one query on each.
  auto specs = workload::PaperDatasets();
  auto p = Pattern::Parse("region->item; item->incategory");
  ASSERT_TRUE(p.ok());
  size_t prev_nodes = 0;
  for (const auto& spec : specs) {
    Graph g = workload::LoadDataset(spec, 0.005);
    EXPECT_GT(g.NumNodes(), prev_nodes) << spec.name;
    prev_nodes = g.NumNodes();
    auto matcher = GraphMatcher::Create(&g);
    ASSERT_TRUE(matcher.ok()) << spec.name;
    auto r = (*matcher)->Match(*p);
    ASSERT_TRUE(r.ok()) << spec.name;
    EXPECT_GT(r->rows.size(), 0u) << spec.name;
  }
}

TEST(IntegrationTest, CoverSizePerNodeInPaperBand) {
  // Table 2 reports |H|/|V| ~= 3.47-3.50 on all five datasets; our
  // synthetic XMark stand-in must land in a comparable band and stay
  // stable across scales (structural, not size-dependent).
  auto specs = workload::PaperDatasets();
  for (const auto& spec : {specs[0], specs[4]}) {
    Graph g = workload::LoadDataset(spec, 0.004);
    GraphDatabase db;
    ASSERT_TRUE(db.Build(g).ok());
    double per_node = double(db.labeling().CoverSize()) / double(g.NumNodes());
    // (Our pruned builder is a little less tight than the authors'
    // EDBT'06 algorithm, and tiny scales inflate the ratio slightly.)
    EXPECT_GT(per_node, 1.5) << spec.name;
    EXPECT_LT(per_node, 6.0) << spec.name;
  }
}

TEST(IntegrationTest, DpsIoAdvantageOnGraphPatterns) {
  // Section 6.2: "DP spends over five times of I/O cost than DPS" — at
  // our test scale we only assert DPS does not do *more* I/O summed over
  // the Q-suite.
  gen::XMarkOptions opts;
  opts.factor = 0.004;
  Graph g = gen::XMarkLike(opts);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  uint64_t dp_io = 0, dps_io = 0;
  for (const auto& p : workload::XmarkGraphPatterns4()) {
    auto dp = (*matcher)->Match(p, {.engine = Engine::kDp});
    ASSERT_TRUE(dp.ok());
    dp_io += dp->stats.modeled_io_pages;
    auto dps = (*matcher)->Match(p, {.engine = Engine::kDps});
    ASSERT_TRUE(dps.ok());
    dps_io += dps->stats.modeled_io_pages;
  }
  // At this tiny test scale the two can land close together; the real
  // multiple shows in bench_io_cost at benchmark scale. Allow 15% slack.
  EXPECT_LE(dps_io, dp_io + dp_io / 7);
}

}  // namespace
}  // namespace fgpm
