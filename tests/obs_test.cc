// Unit tests for the observability subsystem: counter / gauge /
// histogram semantics, percentile math, exact totals under concurrent
// sharded increments, and golden renderings of the Prometheus text
// exposition and the Chrome trace_event JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgpm {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

// Most write-path assertions are meaningless when the subsystem is
// compiled out (increments are no-ops by design).
#define SKIP_IF_COMPILED_OUT()                                 \
  if (!obs::kCompiledIn) {                                     \
    GTEST_SKIP() << "observability compiled out (FGPM_OBS=OFF)"; \
  }

TEST(CounterTest, IncrementAndReset) {
  SKIP_IF_COMPILED_OUT();
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, RuntimeKillSwitchDropsIncrements) {
  SKIP_IF_COMPILED_OUT();
  Counter c;
  obs::SetEnabled(false);
  c.Increment(100);
  obs::SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  c.Increment(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(GaugeTest, SetAddReset) {
  SKIP_IF_COMPILED_OUT();
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketMath) {
  // Pure static math — valid regardless of FGPM_OBS.
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(~0ull), 64);
  EXPECT_EQ(Histogram::BucketUpper(0), 0u);
  EXPECT_EQ(Histogram::BucketUpper(1), 1u);
  EXPECT_EQ(Histogram::BucketUpper(2), 3u);
  EXPECT_EQ(Histogram::BucketUpper(3), 7u);
  EXPECT_EQ(Histogram::BucketUpper(64), ~0ull);
  // Every bucket's range is [upper(b-1)+1, upper(b)].
  for (int b = 1; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketUpper(b - 1) + 1), b);
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketUpper(b)), b);
  }
}

TEST(HistogramTest, CountSumAndBucketsExact) {
  SKIP_IF_COMPILED_OUT();
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(5);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 11u);
  EXPECT_EQ(s.counts[0], 1u);  // {0}
  EXPECT_EQ(s.counts[1], 1u);  // [1, 1]
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 2u);  // [4, 7]
}

TEST(HistogramTest, PercentileMath) {
  SKIP_IF_COMPILED_OUT();
  // Empty histogram: percentile of nothing is 0.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Snap().Percentile(0.5), 0.0);

  // All mass on the zero bucket.
  Histogram zeros;
  for (int i = 0; i < 10; ++i) zeros.Observe(0);
  EXPECT_DOUBLE_EQ(zeros.Snap().Percentile(0.99), 0.0);

  // {0, 1, 5, 5}: rank(p50) = 2 -> last sample of bucket [1,1] = 1;
  // rank(p95) = 3 -> first of the two samples in [4,7], interpolated to
  // the bucket midpoint 5.5.
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(5);
  Histogram::Snapshot s = h.Snap();
  EXPECT_DOUBLE_EQ(s.Percentile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.95), 5.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 5.5);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 7.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(s.Percentile(-1.0), s.Percentile(0.0));
  EXPECT_DOUBLE_EQ(s.Percentile(2.0), s.Percentile(1.0));
  // Percentiles are monotone in p and bounded by the bucket containing
  // the true value (log-bucket error is at most a factor of 2).
  double prev = 0;
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    double v = s.Percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 7.0);
    prev = v;
  }
}

TEST(ConcurrencyTest, EightThreadsExactCounterTotal) {
  SKIP_IF_COMPILED_OUT();
  Counter c;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kIters = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.Increment();
        c.Increment(2);
        h.Observe(static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Sharded cells must not lose a single relaxed add: the aggregate is
  // exact once writers are quiescent.
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIters * 3);
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kIters);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<uint64_t>(t) * kIters;
  }
  EXPECT_EQ(s.sum, expected_sum);
}

TEST(RegistryTest, PointersStableAndSharedByName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "help");
  Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  reg.GetGauge("y");
  reg.GetHistogram("z");
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, ResetZeroesButKeepsPointers) {
  SKIP_IF_COMPILED_OUT();
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  c->Increment(7);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(reg.GetCounter("c"), c);
}

TEST(RegistryTest, PrometheusTextGolden) {
  SKIP_IF_COMPILED_OUT();
  MetricsRegistry reg;
  reg.GetCounter("t_counter", "a counter")->Increment(3);
  reg.GetGauge("t_gauge", "a gauge")->Set(2.5);
  Histogram* h = reg.GetHistogram("t_hist", "a hist");
  h->Observe(0);
  h->Observe(1);
  h->Observe(5);
  h->Observe(5);
  const char* expected =
      "# HELP t_counter a counter\n"
      "# TYPE t_counter counter\n"
      "t_counter 3\n"
      "# HELP t_gauge a gauge\n"
      "# TYPE t_gauge gauge\n"
      "t_gauge 2.5\n"
      "# HELP t_hist a hist\n"
      "# TYPE t_hist histogram\n"
      "t_hist_bucket{le=\"0\"} 1\n"
      "t_hist_bucket{le=\"1\"} 2\n"
      "t_hist_bucket{le=\"3\"} 2\n"
      "t_hist_bucket{le=\"7\"} 4\n"
      "t_hist_bucket{le=\"+Inf\"} 4\n"
      "t_hist_sum 11\n"
      "t_hist_count 4\n";
  EXPECT_EQ(reg.ToPrometheusText(), expected);
}

TEST(RegistryTest, JsonGolden) {
  SKIP_IF_COMPILED_OUT();
  MetricsRegistry reg;
  reg.GetCounter("t_counter")->Increment(3);
  reg.GetGauge("t_gauge")->Set(2.5);
  Histogram* h = reg.GetHistogram("t_hist");
  h->Observe(0);
  h->Observe(1);
  h->Observe(5);
  h->Observe(5);
  const char* expected =
      "{\"counters\": {\"t_counter\": 3}, "
      "\"gauges\": {\"t_gauge\": 2.5}, "
      "\"histograms\": {\"t_hist\": {\"count\": 4, \"sum\": 11, "
      "\"p50\": 1, \"p95\": 5.5, \"p99\": 5.5, "
      "\"buckets\": [[0, 1], [1, 1], [7, 2]]}}}";
  EXPECT_EQ(reg.ToJson(), expected);
}

TEST(RegistryTest, EmptyExports) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ToPrometheusText(), "");
  EXPECT_EQ(reg.ToJson(),
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}");
}

// --- sliding window ---------------------------------------------------------

uint64_t g_fake_now_ns = 0;
uint64_t FakeClock() { return g_fake_now_ns; }

// 6 slices of 1000ns each; one full window is 6000ns of fake time.
constexpr uint64_t kWin = 6000;

TEST(WindowTest, EmptyAndDisabledWindows) {
  SKIP_IF_COMPILED_OUT();
  Histogram no_window;
  no_window.Observe(5);
  EXPECT_FALSE(no_window.window_enabled());
  EXPECT_EQ(no_window.WindowSnap().count, 0u);

  g_fake_now_ns = 0;
  Histogram h;
  h.EnableWindow(kWin, FakeClock);
  EXPECT_TRUE(h.window_enabled());
  Histogram::Snapshot w = h.WindowSnap();
  EXPECT_EQ(w.count, 0u);
  EXPECT_DOUBLE_EQ(w.Percentile(0.99), 0.0);
}

TEST(WindowTest, WindowedP99MatchesOfflineRecompute) {
  SKIP_IF_COMPILED_OUT();
  g_fake_now_ns = 0;
  Histogram h;
  h.EnableWindow(kWin, FakeClock);

  // Phase A: stale samples that must age out of the window.
  for (uint64_t s : {100u, 200u, 3000u, 3000u}) h.Observe(s);
  // Jump two full windows ahead: every ring slot rotates to "now", so
  // phase A sits entirely behind the oldest retained boundary.
  g_fake_now_ns = 2 * kWin;
  EXPECT_EQ(h.WindowSnap().count, 0u);

  // Phase B: the live window.
  const std::vector<uint64_t> live = {1, 5, 5, 9000};
  for (uint64_t s : live) h.Observe(s);

  // Offline recompute over exactly the live samples.
  Histogram::Snapshot expect;
  for (uint64_t s : live) {
    expect.counts[Histogram::BucketOf(s)]++;
    expect.count++;
    expect.sum += s;
  }
  Histogram::Snapshot w = h.WindowSnap();
  EXPECT_EQ(w.count, expect.count);
  EXPECT_EQ(w.sum, expect.sum);
  EXPECT_EQ(w.counts, expect.counts);
  EXPECT_DOUBLE_EQ(w.Percentile(0.50), expect.Percentile(0.50));
  EXPECT_DOUBLE_EQ(w.Percentile(0.95), expect.Percentile(0.95));
  EXPECT_DOUBLE_EQ(w.Percentile(0.99), expect.Percentile(0.99));
  // The cumulative view still has everything: the window is a view, not
  // a second histogram.
  EXPECT_EQ(h.Snap().count, 8u);
}

TEST(WindowTest, SingleRotationKeepsThenAgesSamples) {
  SKIP_IF_COMPILED_OUT();
  g_fake_now_ns = 0;
  Histogram h;
  h.EnableWindow(kWin, FakeClock);
  h.Observe(7);
  h.Observe(7);

  // One slice boundary: a single rotation. The ring has not wrapped, so
  // the oldest snapshot is still the zero snapshot — both samples stay
  // in the window.
  g_fake_now_ns = kWin / Histogram::kWindowSlices;
  EXPECT_EQ(h.WindowSnap().count, 2u);

  // One full window later the boundary snapshot that contains them
  // becomes the subtrahend and they age out.
  g_fake_now_ns += kWin;
  EXPECT_EQ(h.WindowSnap().count, 0u);
}

TEST(WindowTest, ExemplarStampsBucketLastWriterWins) {
  SKIP_IF_COMPILED_OUT();
  g_fake_now_ns = 42;
  Histogram h;
  h.EnableWindow(kWin, FakeClock);
  h.ObserveWithExemplar(5, 0xdeadu);
  Histogram::Exemplar ex = h.BucketExemplar(Histogram::BucketOf(5));
  EXPECT_EQ(ex.trace_id, 0xdeadu);
  h.ObserveWithExemplar(6, 0xbeefu);  // same bucket [4,7]
  EXPECT_EQ(h.BucketExemplar(Histogram::BucketOf(5)).trace_id, 0xbeefu);
  // Untouched bucket has no exemplar; trace_id 0 never stamps.
  EXPECT_EQ(h.BucketExemplar(Histogram::BucketOf(1u << 20)).trace_id, 0u);
  h.Observe(1u << 20);
  EXPECT_EQ(h.BucketExemplar(Histogram::BucketOf(1u << 20)).trace_id, 0u);
}

TEST(RegistryTest, WindowedSeriesInExports) {
  SKIP_IF_COMPILED_OUT();
  g_fake_now_ns = 0;
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("w_hist", "windowed");
  h->EnableWindow(kWin, FakeClock);
  h->ObserveWithExemplar(5, 0xabcu);
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("w_hist_window{quantile=\"p50\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("w_hist_window{quantile=\"p99\"}"), std::string::npos);
  EXPECT_NE(text.find("w_hist_window_count 1"), std::string::npos);
  EXPECT_NE(text.find("# {trace_id=\"0000000000000abc\"}"), std::string::npos)
      << text;
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"window\": {\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"0000000000000abc\""), std::string::npos);
}

// --- exporter hardening -----------------------------------------------------

TEST(RegistryTest, PoisonedGaugeDegradesGracefully) {
  SKIP_IF_COMPILED_OUT();
  MetricsRegistry reg;
  reg.GetGauge("poisoned_a")->Set(std::nan(""));
  reg.GetGauge("poisoned_b")->Set(std::numeric_limits<double>::infinity());
  reg.GetGauge("poisoned_c")->Set(-std::numeric_limits<double>::infinity());
  reg.GetCounter("fine_total")->Increment(1);

  // Prometheus exposition has canonical spellings for non-finite values.
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("poisoned_a NaN\n"), std::string::npos) << text;
  EXPECT_NE(text.find("poisoned_b +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("poisoned_c -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("fine_total 1\n"), std::string::npos);

  // JSON has no NaN/Inf literals at all: poisoned values become null and
  // the document stays parseable.
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"poisoned_a\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"poisoned_b\": null"), std::string::npos);
  EXPECT_NE(json.find("\"poisoned_c\": null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("Inf"), std::string::npos);
}

TEST(RegistryTest, MetricNamesSanitizedInExposition) {
  SKIP_IF_COMPILED_OUT();
  MetricsRegistry reg;
  reg.GetCounter("bad name-1!", "weird\nhelp\\text")->Increment(2);
  reg.GetCounter("9starts_with_digit")->Increment(1);
  std::string text = reg.ToPrometheusText();
  // Every char outside [a-zA-Z0-9_:] maps to '_'; a leading digit too.
  EXPECT_NE(text.find("bad_name_1_ 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("_starts_with_digit 1\n"), std::string::npos);
  // HELP text escapes newline and backslash per the exposition format.
  EXPECT_NE(text.find("# HELP bad_name_1_ weird\\nhelp\\\\text\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("bad name"), std::string::npos);
}

TEST(TraceTest, ChromeJsonGolden) {
  // AddCompleteSpan takes explicit timestamps, so the rendering is
  // deterministic with or without FGPM_OBS.
  QueryTrace trace;
  uint32_t root =
      trace.AddCompleteSpan("root", "query", -1, 0.0, 1000.0, 250.0);
  trace.AddArg(root, "rows", 5);
  uint32_t child =
      trace.AddCompleteSpan("FETCH(A->B)", "operator",
                            static_cast<int32_t>(root), 100.0, 500.0, 0.0);
  trace.AddArg(child, "rows_out", 3);
  const char* expected =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "{\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"name\": \"root\", "
      "\"cat\": \"query\", \"ts\": 0.000, \"dur\": 1000.000, "
      "\"args\": {\"cpu_us\": 250.000, \"rows\": 5}},\n"
      "{\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"name\": \"FETCH(A->B)\", "
      "\"cat\": \"operator\", \"ts\": 100.000, \"dur\": 500.000, "
      "\"args\": {\"cpu_us\": 0.000, \"rows_out\": 3}},\n"
      "{\"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"name\": \"SELECT(A->C)\", "
      "\"cat\": \"operator\", \"ts\": 100.000, \"dur\": 500.000, "
      "\"args\": {\"cpu_us\": 0.000}}\n"
      "]}\n";
  trace.AddCompleteSpan("SELECT(A->C)", "operator",
                        static_cast<int32_t>(child), 100.0, 500.0, 0.0);
  EXPECT_EQ(trace.ToChromeJson(), expected);
}

TEST(TraceTest, ToStringIndentsByParentDepth) {
  QueryTrace trace;
  uint32_t root = trace.AddCompleteSpan("q", "query", -1, 0, 10, 0);
  uint32_t op = trace.AddCompleteSpan("FETCH(A->B)", "operator",
                                      static_cast<int32_t>(root), 0, 5, 0);
  trace.AddCompleteSpan("SELECT(B->C)", "operator",
                        static_cast<int32_t>(op), 0, 5, 0);
  std::string s = trace.ToString();
  EXPECT_EQ(s.rfind("q ", 0), 0u);  // root at depth 0, no indent
  EXPECT_NE(s.find("  FETCH(A->B)"), std::string::npos);
  EXPECT_NE(s.find("    SELECT(B->C)"), std::string::npos);
}

TEST(TraceTest, BeginEndSpanMeasuresTime) {
  QueryTrace trace;
  uint32_t id = trace.BeginSpan("work", "operator");
  // Spin a touch so wall time is strictly positive on coarse clocks.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += static_cast<uint64_t>(i);
  trace.EndSpan(id);
  ASSERT_EQ(trace.spans().size(), 1u);
  const TraceSpan& s = trace.spans()[0];
  EXPECT_EQ(s.name, "work");
  EXPECT_GT(s.wall_us, 0.0);
  EXPECT_GE(s.start_us, 0.0);
}

TEST(TraceTest, FindArg) {
  QueryTrace trace;
  uint32_t id = trace.AddCompleteSpan("s", "operator", -1, 0, 1, 0);
  trace.AddArg(id, "rows_out", 17);
  const TraceSpan& s = trace.spans()[0];
  ASSERT_NE(s.FindArg("rows_out"), nullptr);
  EXPECT_EQ(*s.FindArg("rows_out"), 17u);
  EXPECT_EQ(s.FindArg("missing"), nullptr);
}

}  // namespace
}  // namespace fgpm
