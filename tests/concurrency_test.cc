// Concurrency hammer tests for the sharded read path (run under
// FGPM_SANITIZE=thread via the `verify-tsan` Makefile target / the
// ctest `concurrency` label):
//  * buffer pool: 8 threads pin/unpin overlapping page sets on a pool
//    far smaller than the page universe, checking that a pinned frame
//    is never evicted out from under a reader (page contents must stay
//    intact for the guard's whole lifetime);
//  * stats: hits/misses/evictions totals are exact under concurrent
//    readers (per-shard atomics summed on read);
//  * code cache: concurrent GetCodes through the striped cache returns
//    records identical to the in-memory labeling.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gdb/database.h"
#include "graph/generators.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace fgpm {
namespace {

// Stamps every word of a page with a value derived from the page id, so
// a reader can detect a frame that was recycled while it held a pin.
void StampPage(Page* p, PageId id) {
  for (size_t off = 0; off + sizeof(uint64_t) <= kPageSize;
       off += sizeof(uint64_t)) {
    p->Write<uint64_t>(off, (uint64_t{id} << 32) ^ (id * 0x9e3779b9u) ^ off);
  }
}

bool CheckPage(const Page& p, PageId id) {
  for (size_t off = 0; off + sizeof(uint64_t) <= kPageSize;
       off += sizeof(uint64_t)) {
    uint64_t expect = (uint64_t{id} << 32) ^ (id * 0x9e3779b9u) ^ off;
    if (p.Read<uint64_t>(off) != expect) return false;
  }
  return true;
}

void RunPinnedHammer(const BufferPoolOptions& options, size_t expect_shards,
                     int iters_per_thread) {
  constexpr size_t kPages = 512;
  constexpr int kThreads = 8;
  const int kItersPerThread = iters_per_thread;

  DiskManager disk;
  BufferPool pool(&disk, options);
  ASSERT_EQ(pool.num_shards(), expect_shards);
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
    StampPage(&g->MutablePage(), g->id());
    ids.push_back(g->id());
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  std::atomic<uint64_t> checks{0};
  std::atomic<int> failures{0};
  auto worker = [&](unsigned seed) {
    Rng rng(seed);
    for (int it = 0; it < kItersPerThread && failures.load() == 0; ++it) {
      // Pin an overlapping set of up to 3 pages, verify all of them
      // twice (before and after more traffic lands on the pool), then
      // release. A pinned frame that got evicted/recycled would fail
      // the second check.
      PageGuard guards[3];
      PageId got[3];
      size_t held = 0;
      size_t want = 1 + rng.NextBounded(3);
      for (size_t k = 0; k < want; ++k) {
        // Skewed choice: half the traffic hits a hot 32-page set so
        // threads genuinely overlap.
        PageId id = (rng.NextBounded(2) == 0)
                        ? ids[rng.NextBounded(32)]
                        : ids[rng.NextBounded(kPages)];
        auto g = pool.Fetch(id);
        if (!g.ok()) {
          // All frames of one shard transiently pinned is legal; back
          // off and retry with fewer pins.
          ASSERT_EQ(g.status().code(), StatusCode::kResourceExhausted);
          break;
        }
        got[held] = id;
        guards[held++] = std::move(*g);
      }
      for (size_t k = 0; k < held; ++k) {
        if (!CheckPage(guards[k].page(), got[k])) failures.fetch_add(1);
      }
      // Extra traffic while still holding the pins.
      auto g = pool.Fetch(ids[rng.NextBounded(kPages)]);
      if (g.ok()) g->Release();
      for (size_t k = 0; k < held; ++k) {
        if (!CheckPage(guards[k].page(), got[k])) failures.fetch_add(1);
        checks.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, 1000 + t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(checks.load(), 0u);
  // After the storm, every page must still round-trip from disk.
  for (PageId id : ids) {
    auto g = pool.Fetch(id);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(CheckPage(g->page(), id));
  }
}

TEST(ConcurrencyHammer, PinnedFramesSurviveEightThreads) {
  // 4x oversubscribed pool so evictions are constant; 4 shards so
  // cross-shard traffic and same-shard contention both occur. Misses
  // load outside the shard latch (io_busy protocol), so this also
  // hammers concurrent same-page loads racing waiters.
  RunPinnedHammer(BufferPoolOptions{128 * kPageSize, 4}, 4, 4000);
}

TEST(ConcurrencyHammer, PinnedFramesSurviveLegacyLatchedIo) {
  // Same storm against the pre-sharding miss path (latch held across
  // the disk read), which bench_concurrency uses as its A/B baseline.
  RunPinnedHammer(BufferPoolOptions{128 * kPageSize, 4, true}, 4, 1500);
}

TEST(ConcurrencyHammer, StatsTotalsExactUnderConcurrentReaders) {
  constexpr size_t kPages = 64;
  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 5000;

  DiskManager disk;
  // Pool big enough to hold everything: after the first touch of a page
  // there are no evictions, so the split is deterministic in aggregate.
  BufferPool pool(&disk, BufferPoolOptions{256 * kPageSize, 8});
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
    ids.push_back(g->id());
  }
  pool.ResetStats();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + t);
      for (int i = 0; i < kFetchesPerThread; ++i) {
        auto g = pool.Fetch(ids[rng.NextBounded(kPages)]);
        ASSERT_TRUE(g.ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  BufferPoolStats s = pool.stats();
  // Every fetch is exactly one hit or one miss; nothing is lost to
  // racy read-modify-write (the old `stats_.hits++` under a data race
  // could drop increments).
  EXPECT_EQ(s.hits + s.misses, uint64_t{kThreads} * kFetchesPerThread);
  // All pages stayed resident (they were resident before the reset), so
  // every fetch was a hit and nothing was evicted.
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ConcurrencyHammer, SingleShardMatchesLegacyLruSemantics) {
  // The 1-shard pool must reproduce the old single-mutex pool move for
  // move: LRU victim order, resource exhaustion, and write-back.
  DiskManager disk;
  BufferPool pool(&disk, BufferPoolOptions{4 * kPageSize, 1});
  ASSERT_EQ(pool.num_shards(), 1u);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    auto g = pool.New();
    ASSERT_TRUE(g.ok());
    g->MutablePage().Write<uint32_t>(0, 100 + i);
    ids.push_back(g->id());
  }
  // Touch page 0 so page 1 becomes the LRU victim.
  { auto g = pool.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  { auto g = pool.New(); ASSERT_TRUE(g.ok()); }  // evicts ids[1]
  uint64_t misses_before = pool.stats().misses;
  { auto g = pool.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool.stats().misses, misses_before);  // still resident
  auto g1 = pool.Fetch(ids[1]);
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(pool.stats().misses, misses_before + 1);  // was evicted
  EXPECT_EQ(g1->page().Read<uint32_t>(0), 101u);      // written back dirty
}

TEST(ConcurrencyHammer, StripedCodeCacheAgreesWithLabeling) {
  Graph g = gen::ErdosRenyi(400, 1200, 4, 91);
  GraphDatabaseOptions opts;
  opts.code_cache_capacity = 256;  // small: forces CLOCK evictions
  opts.code_cache_stripes = 8;
  opts.buffer_pool_shards = 8;
  GraphDatabase db(opts);
  ASSERT_TRUE(db.Build(g).ok());

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + t);
      for (int i = 0; i < 3000; ++i) {
        NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
        LabelId l = g.label_of(v);
        GraphCodeRecord rec;
        Status s = db.GetCodes(v, l, &rec);
        if (!s.ok() || rec.node != v ||
            !std::ranges::equal(rec.in, db.labeling().InCode(v)) ||
            !std::ranges::equal(rec.out, db.labeling().OutCode(v))) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  IoSnapshot io = db.Io();
  // Hot nodes repeat, so the striped cache must actually serve hits.
  EXPECT_GT(io.code_cache_hits, 0u);
  EXPECT_EQ(io.code_cache_hits + io.code_cache_misses,
            uint64_t{kThreads} * 3000);
}

}  // namespace
}  // namespace fgpm
