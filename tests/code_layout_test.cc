// Flat-arena / hybrid-bitmap code layout: serialization round-trips,
// CoverSize invariance across bitmap thresholds, and probe equivalence
// between the pure-array and bitmap-sidecar representations (the layout
// may change the probe kernel, never the verdict).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/reach_oracle.h"
#include "reach/two_hop.h"

namespace fgpm {
namespace {

// Nodes with no edges at all: after compaction every stored code is
// empty (a node's only label entry is itself, which the compact layout
// strips).
Graph IsolatedNodes(uint32_t n) {
  Graph g;
  for (uint32_t i = 0; i < n; ++i) g.AddNode(i % 2 == 0 ? "A" : "B");
  g.Finalize();
  return g;
}

// One big cycle: a single SCC, one center, every pair reachable.
Graph SingleScc(uint32_t n) {
  Graph g;
  std::vector<NodeId> ids;
  for (uint32_t i = 0; i < n; ++i) ids.push_back(g.AddNode("C"));
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(ids[i], ids[(i + 1) % n]).ok());
  }
  g.Finalize();
  return g;
}

void ExpectSameLabeling(const TwoHopLabeling& a, const TwoHopLabeling& b,
                        const Graph& g) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_centers(), b.num_centers());
  EXPECT_EQ(a.CoverSize(), b.CoverSize());
  EXPECT_EQ(a.bitmap_threshold(), b.bitmap_threshold());
  EXPECT_EQ(a.NumBitmapCodes(), b.NumBitmapCodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(a.CenterOf(v), b.CenterOf(v));
    EXPECT_TRUE(std::ranges::equal(a.InCode(v), b.InCode(v))) << "v=" << v;
    EXPECT_TRUE(std::ranges::equal(a.OutCode(v), b.OutCode(v))) << "v=" << v;
  }
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    EXPECT_EQ(a.Reaches(u, v), b.Reaches(u, v)) << "u=" << u << " v=" << v;
  }
}

class CodeLayoutRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CodeLayoutRoundTrip, GeneratedDags) {
  const uint32_t threshold = GetParam();
  std::vector<Graph> graphs;
  graphs.push_back(gen::RandomDag(300, 2.0, 3, 41));
  graphs.push_back(gen::ErdosRenyi(250, 700, 3, 42));
  graphs.push_back(IsolatedNodes(40));
  graphs.push_back(SingleScc(25));
  for (const Graph& g : graphs) {
    TwoHopLabeling lab = BuildTwoHopPruned(g, 1, threshold);
    std::stringstream ss;
    BinaryWriter w(&ss);
    lab.SaveMeta(&w);
    ASSERT_TRUE(w.ok());
    TwoHopLabeling back;
    BinaryReader r(&ss);
    ASSERT_TRUE(back.LoadMeta(&r).ok());
    ExpectSameLabeling(lab, back, g);
  }
}

// Thresholds on both sides of typical code lengths, including 0 (flat
// only) and effectively-infinite (also flat only, via the other sign).
INSTANTIATE_TEST_SUITE_P(Thresholds, CodeLayoutRoundTrip,
                         ::testing::Values(0u, 2u, 128u, 1u << 30));

TEST(CodeLayoutTest, TruncatedMetaIsRejected) {
  Graph g = gen::RandomDag(60, 1.5, 2, 43);
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  std::stringstream ss;
  BinaryWriter w(&ss);
  lab.SaveMeta(&w);
  ASSERT_TRUE(w.ok());
  std::string bytes = ss.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  BinaryReader r(&cut);
  TwoHopLabeling back;
  EXPECT_FALSE(back.LoadMeta(&r).ok());
}

TEST(CodeLayoutTest, CoverSizeInvariantAcrossThresholds) {
  Graph g = gen::ScaleFree(400, 3, 3, 44);
  const uint32_t thresholds[] = {0u, 2u, 8u, 128u, 1u << 30};
  TwoHopLabeling base = BuildTwoHopPruned(g, 1, 0);
  const uint64_t cover = base.CoverSize();
  const uint64_t bytes_flat = base.CodeBytes();
  EXPECT_EQ(base.NumBitmapCodes(), 0u);
  for (uint32_t t : thresholds) {
    TwoHopLabeling lab = BuildTwoHopPruned(g, 1, t);
    EXPECT_EQ(lab.CoverSize(), cover) << "threshold=" << t;
    // Sidecars only ever add bytes on top of the same arena.
    EXPECT_GE(lab.CodeBytes(), bytes_flat);
  }
  // A small threshold on a scale-free graph must actually create
  // sidecars (hubs have long codes), and the greedy builder agrees on
  // the invariance too.
  TwoHopLabeling hybrid = BuildTwoHopPruned(g, 1, 2);
  EXPECT_GT(hybrid.NumBitmapCodes(), 0u);
  EXPECT_EQ(hybrid.CoverSize(), cover);
}

TEST(CodeLayoutTest, SetBitmapThresholdRebuildsWithoutChangingVerdicts) {
  Graph g = gen::ScaleFree(300, 4, 2, 45);
  TwoHopLabeling lab = BuildTwoHopPruned(g, 1, 0);
  ReachOracle oracle(&g);
  Rng rng(46);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<bool> expect;
  for (int i = 0; i < 1500; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    pairs.emplace_back(u, v);
    expect.push_back(oracle.Reaches(u, v));
  }
  const uint64_t cover = lab.CoverSize();
  for (uint32_t t : {0u, 2u, 16u, 1u << 30, 0u}) {  // ends back at flat
    lab.SetBitmapThreshold(t);
    EXPECT_EQ(lab.bitmap_threshold(), t);
    EXPECT_EQ(lab.CoverSize(), cover);
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(lab.Reaches(pairs[i].first, pairs[i].second), expect[i])
          << "t=" << t << " u=" << pairs[i].first << " v=" << pairs[i].second;
    }
  }
  EXPECT_EQ(lab.NumBitmapCodes(), 0u);
}

TEST(CodeLayoutTest, GreedyBuilderRoundTripsToo) {
  Graph g = gen::RandomDag(80, 1.8, 2, 47);
  TwoHopLabeling lab = BuildTwoHopGreedy(g, 4);
  std::stringstream ss;
  BinaryWriter w(&ss);
  lab.SaveMeta(&w);
  ASSERT_TRUE(w.ok());
  TwoHopLabeling back;
  BinaryReader r(&ss);
  ASSERT_TRUE(back.LoadMeta(&r).ok());
  ExpectSameLabeling(lab, back, g);
}

}  // namespace
}  // namespace fgpm
