// Work-stealing scheduler tests (label: sched, concurrency):
//  * TaskDeque (Chase-Lev) unit + multi-thief stress — the TSan-critical
//    piece of the scheduler.
//  * Nested parallel regions actually run (the fork-join pool forbade
//    them; the scheduler executes them with the blocked caller helping).
//  * Adaptive splitting: a skewed region splits morsels once other
//    participants starve.
//  * External participation: TryHelp executes queued morsels, armed
//    wake hooks fire when work is published.
//  * Randomized determinism differential: byte-identical rows across
//    1/2/4/8-thread pools x {binary, wcoj, hybrid} join strategies
//    while a noise thread keeps the scheduler under steal pressure.
//  * Server thread accounting: shards=2 with exec threads=4 must NOT
//    multiply into shards x exec threads (the old oversubscription).
//  * ForkJoinPool (legacy A/B baseline) still satisfies the coverage
//    contract, and asserts on reentrant use in debug builds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/scheduler.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/sched_metrics.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

void* Tok(uintptr_t v) { return reinterpret_cast<void*>(v); }
uintptr_t Val(void* p) { return reinterpret_cast<uintptr_t>(p); }

TEST(TaskDequeTest, OwnerLifoThiefFifo) {
  TaskDeque dq;
  EXPECT_TRUE(dq.Empty());
  EXPECT_EQ(dq.Pop(), nullptr);
  EXPECT_EQ(dq.Steal(), nullptr);
  ASSERT_TRUE(dq.Push(Tok(1)));
  ASSERT_TRUE(dq.Push(Tok(2)));
  ASSERT_TRUE(dq.Push(Tok(3)));
  EXPECT_EQ(Val(dq.Steal()), 1u);  // FIFO from the top
  EXPECT_EQ(Val(dq.Pop()), 3u);    // LIFO from the bottom
  EXPECT_EQ(Val(dq.Pop()), 2u);
  EXPECT_EQ(dq.Pop(), nullptr);
  EXPECT_TRUE(dq.Empty());
}

TEST(TaskDequeTest, BoundedPushFailsWhenFull) {
  TaskDeque dq;
  for (size_t i = 0; i < TaskDeque::kCapacity; ++i) {
    ASSERT_TRUE(dq.Push(Tok(i + 1))) << i;
  }
  EXPECT_FALSE(dq.Push(Tok(9999)));
  EXPECT_EQ(Val(dq.Steal()), 1u);  // freeing one slot re-admits
  EXPECT_TRUE(dq.Push(Tok(9999)));
  EXPECT_FALSE(dq.Push(Tok(10000)));
}

// Multi-thief stress: every pushed token is consumed exactly once, by
// the owner (Pop) or a thief (Steal). This is the test TSan watches.
TEST(TaskDequeTest, ConcurrentStealStress) {
  constexpr uintptr_t kTokens = 20000;
  constexpr int kThieves = 3;
  TaskDeque dq;
  std::vector<std::atomic<int>> seen(kTokens + 1);
  for (auto& s : seen) s = 0;
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !dq.Empty()) {
        void* p = dq.Steal();
        if (p != nullptr) {
          ++seen[Val(p)];
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  uint64_t rng = 12345;
  for (uintptr_t v = 1; v <= kTokens; ++v) {
    while (!dq.Push(Tok(v))) {
      void* p = dq.Pop();
      if (p != nullptr) ++seen[Val(p)];
    }
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if ((rng >> 33) % 4 == 0) {  // owner occasionally takes its own work
      void* p = dq.Pop();
      if (p != nullptr) ++seen[Val(p)];
    }
  }
  void* p = nullptr;
  while ((p = dq.Pop()) != nullptr) ++seen[Val(p)];
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (uintptr_t v = 1; v <= kTokens; ++v) {
    ASSERT_EQ(seen[v].load(), 1) << "token " << v;
  }
}

// A ParallelFor body opening another region — forbidden on the old
// fork-join pool — runs to completion with full coverage of both
// levels, from any mix of pools.
TEST(SchedulerTest, NestedRegionsRun) {
  constexpr size_t kOuter = 64, kInner = 32;
  ThreadPool outer(4), inner(4);
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h = 0;
  outer.ParallelFor(kOuter, 8, [&](unsigned worker, size_t, size_t b,
                                   size_t e) {
    EXPECT_LT(worker, outer.size());
    for (size_t o = b; o < e; ++o) {
      inner.ParallelFor(kInner, 4, [&, o](unsigned iw, size_t, size_t ib,
                                          size_t ie) {
        EXPECT_LT(iw, inner.size());
        for (size_t i = ib; i < ie; ++i) ++hits[o * kInner + i];
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

// Same-pool nesting (recursive use of one executor's pool).
TEST(SchedulerTest, SamePoolNestingRuns) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(16, 2, [&](unsigned, size_t, size_t b, size_t e) {
    for (size_t o = b; o < e; ++o) {
      pool.ParallelFor(100, 10, [&](unsigned, size_t, size_t ib, size_t ie) {
        uint64_t local = 0;
        for (size_t i = ib; i < ie; ++i) local += i;
        sum += local;
      });
    }
  });
  EXPECT_EQ(sum.load(), 16ull * (100 * 99 / 2));
}

// A region whose first morsel is much slower than the rest must split
// it once the fast participants run dry (adaptive morsel sizing).
TEST(SchedulerTest, SkewedRegionSplitsForStarvingWorkers) {
  Scheduler& sched = Scheduler::Global();
  uint64_t splits_before = sched.GetStats().splits;
  // min_split is 1024 chunks (morsel_rows / chunk_size); 4 initial
  // morsels of 4096 chunks leave room to split several times.
  constexpr size_t kN = 16384, kChunk = 1;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(kN, kChunk, [&](unsigned, size_t chunk, size_t b,
                                   size_t e) {
    if (chunk < kN / 4) {  // the first (owner-popped) morsel is sleepy
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  EXPECT_GT(sched.GetStats().splits, splits_before);
}

// TryHelp from a never-attached thread executes queued morsels.
TEST(SchedulerTest, TryHelpExecutesQueuedWork) {
  std::atomic<bool> running{true};
  std::atomic<uint64_t> rounds{0};
  std::thread producer([&] {
    ThreadPool pool(4);
    while (running.load(std::memory_order_acquire)) {
      std::atomic<uint64_t> sum{0};
      pool.ParallelFor(2048, 16, [&](unsigned, size_t, size_t b, size_t e) {
        uint64_t local = 0;
        for (size_t i = b; i < e; ++i) local += i;
        sum += local;
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      });
      EXPECT_EQ(sum.load(), 2048ull * 2047 / 2);
      rounds.fetch_add(1);
    }
  });
  bool helped = false;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!helped && std::chrono::steady_clock::now() < deadline) {
    helped = Scheduler::Global().TryHelp();
    if (!helped) std::this_thread::yield();
  }
  running.store(false, std::memory_order_release);
  producer.join();
  EXPECT_TRUE(helped);
  EXPECT_GE(rounds.load(), 1u);
}

// An armed wake hook fires (once) when work is published, and counts as
// a starving participant while armed.
TEST(SchedulerTest, ArmedWakeHookFiresOnPublish) {
  Scheduler& sched = Scheduler::Global();
  std::atomic<int> fired{0};
  int id = sched.AddWakeHook([&] { fired.fetch_add(1); });
  sched.ArmWakeHook(id, true);
  {
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(1024, 8, [&](unsigned, size_t, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 1024ull * 1023 / 2);
  }
  EXPECT_GE(fired.load(), 1);
  int after_region = fired.load();
  sched.RemoveWakeHook(id);
  ThreadPool pool(4);
  pool.ParallelFor(1024, 8, [](unsigned, size_t, size_t, size_t) {});
  EXPECT_EQ(fired.load(), after_region);  // removed hooks never fire
}

// The obs bridge mirrors scheduler counters into the default registry.
TEST(SchedMetricsTest, PublishMirrorsSchedulerCounters) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(8192, 8, [&](unsigned, size_t, size_t b, size_t e) {
    uint64_t local = 0;
    for (size_t i = b; i < e; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), 8192ull * 8191 / 2);
  obs::PublishSchedulerMetrics();
  auto& reg = obs::MetricsRegistry::Default();
  uint64_t regions = reg.GetCounter("fgpm_sched_regions_total")->Value();
  uint64_t tasks = reg.GetCounter("fgpm_sched_tasks_total")->Value();
  EXPECT_GE(regions, 1u);
  EXPECT_GE(tasks, 1u);
  EXPECT_GT(reg.GetGauge("fgpm_sched_workers")->Value(), 0.0);

  // Publishing is delta-based: a second publish with no new work must
  // not advance the mirrored counters.
  obs::PublishSchedulerMetrics();
  uint64_t regions2 = reg.GetCounter("fgpm_sched_regions_total")->Value();
  EXPECT_EQ(regions2, regions);
}

// --- determinism under steal pressure --------------------------------------

// Byte-identical rows across pool widths for every join strategy, while
// a noise thread keeps unrelated morsels flowing through the same
// scheduler (so victim deques are non-empty and steals actually happen).
TEST(SchedulerDeterminism, StrategiesByteIdenticalAcrossWidths) {
  Graph g = gen::ErdosRenyi(150, 480, 5, /*seed=*/17);

  const unsigned kWidths[] = {1, 2, 4, 8};
  std::vector<std::unique_ptr<GraphMatcher>> matchers;
  for (unsigned t : kWidths) {
    auto m = GraphMatcher::Create(&g, {}, ExecOptions{.num_threads = t});
    ASSERT_TRUE(m.ok()) << m.status();
    matchers.push_back(std::move(*m));
  }

  std::atomic<bool> stop{false};
  std::thread noise([&] {
    ThreadPool pool(4);
    std::atomic<uint64_t> sink{0};
    while (!stop.load(std::memory_order_acquire)) {
      pool.ParallelFor(4096, 32, [&](unsigned, size_t, size_t b, size_t e) {
        uint64_t local = 0;
        for (size_t i = b; i < e; ++i) local += i * i;
        sink += local;
      });
    }
  });

  auto patterns = workload::RandomPatterns(g, /*count=*/4, /*nodes=*/3,
                                           /*extra_edges=*/1, 901);
  ASSERT_FALSE(patterns.empty());
  for (JoinStrategy s :
       {JoinStrategy::kBinary, JoinStrategy::kWcoj, JoinStrategy::kHybrid}) {
    for (auto& m : matchers) m->set_join_strategy(s);
    for (const auto& p : patterns) {
      std::vector<std::vector<NodeId>> first_rows;
      for (size_t i = 0; i < matchers.size(); ++i) {
        auto r = matchers[i]->Match(p, {});
        ASSERT_TRUE(r.ok()) << r.status();
        if (i == 0) {
          first_rows = r->rows;
        } else {
          ASSERT_EQ(r->rows, first_rows)
              << "strategy " << static_cast<int>(s) << " width "
              << kWidths[i] << " pattern " << p.ToString();
        }
      }
    }
  }
  stop.store(true, std::memory_order_release);
  noise.join();
}

// --- server thread accounting ----------------------------------------------

int CountOsThreads() {
  int n = 0;
  for ([[maybe_unused]] auto& e :
       std::filesystem::directory_iterator("/proc/self/task")) {
    ++n;
  }
  return n;
}

// shards=2 with per-query exec threads=4: the old design would spawn
// 2 workers + 2 pools x 3 threads = 8 new threads. With the shared
// scheduler the workers ARE the pool: at most 2 workers + (4 - 2)
// internal scheduler threads appear (fewer when internals already
// exist), and never shards x exec.
TEST(ServerThreadCount, SharedSchedulerAvoidsOversubscription) {
  Graph g = gen::ScaleFree(500, 3, 8, /*seed=*/7);
  // Sanitizer runtimes (TSan) start their own background thread lazily on
  // the first pthread_create; force it into existence before the baseline
  // count so it doesn't get attributed to the server.
  std::thread([] {}).join();
  int threads_before = CountOsThreads();
  unsigned internal_before = Scheduler::Global().internal_workers();

  net::ServerOptions opts;
  opts.num_shards = 2;
  opts.matcher.exec.num_threads = 4;
  auto server = net::Server::Start(&g, opts);
  ASSERT_TRUE(server.ok()) << server.status();

  int threads_during = CountOsThreads();
  unsigned internal_during = Scheduler::Global().internal_workers();
  EXPECT_LE(internal_during - internal_before, 2u);  // width - reserved
  EXPECT_LE(threads_during - threads_before,
            2 + static_cast<int>(internal_during - internal_before))
      << "server spawned private executor pools (oversubscription)";

  (*server)->Stop();
}

// --- legacy fork-join pool (A/B baseline) ----------------------------------

void CheckForkJoinCoverage(unsigned threads, size_t n, size_t chunk_size) {
  ForkJoinPool pool(threads);
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  std::atomic<size_t> chunks_run{0};
  pool.ParallelFor(n, chunk_size, [&](unsigned worker, size_t chunk,
                                      size_t begin, size_t end) {
    EXPECT_LT(worker, pool.size());
    EXPECT_EQ(begin, chunk * chunk_size);
    EXPECT_EQ(end, std::min(n, begin + chunk_size));
    ++chunks_run;
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(chunks_run.load(), ThreadPool::NumChunks(n, chunk_size));
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ForkJoinPoolTest, CoverageContractHolds) {
  for (unsigned threads : {1u, 2u, 4u}) {
    for (size_t n : {1ull, 7ull, 64ull, 1000ull}) {
      CheckForkJoinCoverage(threads, n, 3);
      CheckForkJoinCoverage(threads, n, 64);
    }
  }
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(ForkJoinPoolDeathTest, ReentrantRegionAsserts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        ForkJoinPool pool(2);
        pool.ParallelFor(64, 4, [&](unsigned, size_t, size_t, size_t) {
          pool.ParallelFor(8, 1, [](unsigned, size_t, size_t, size_t) {});
        });
      },
      "FGPM_CHECK failed");
}
#endif

}  // namespace
}  // namespace fgpm
