// Parameterized sweeps over the storage engine: B+-tree behavior across
// insertion orders and sizes, buffer-pool behavior across capacities,
// heap files across record-size mixes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace fgpm {
namespace {

// ---- B+-tree: insertion order x size -------------------------------------

enum class KeyOrder { kAscending, kDescending, kRandom, kZigzag };

const char* KeyOrderName(KeyOrder o) {
  switch (o) {
    case KeyOrder::kAscending:
      return "Ascending";
    case KeyOrder::kDescending:
      return "Descending";
    case KeyOrder::kRandom:
      return "Random";
    case KeyOrder::kZigzag:
      return "Zigzag";
  }
  return "?";
}

std::vector<uint64_t> MakeKeys(KeyOrder order, size_t n) {
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = i * 3 + 1;
  switch (order) {
    case KeyOrder::kAscending:
      break;
    case KeyOrder::kDescending:
      std::reverse(keys.begin(), keys.end());
      break;
    case KeyOrder::kRandom: {
      Rng rng(n * 7 + 13);
      rng.Shuffle(&keys);
      break;
    }
    case KeyOrder::kZigzag: {
      std::vector<uint64_t> zig;
      zig.reserve(n);
      size_t lo = 0, hi = n;
      while (lo < hi) {
        zig.push_back(keys[lo++]);
        if (lo < hi) zig.push_back(keys[--hi]);
      }
      keys = std::move(zig);
      break;
    }
  }
  return keys;
}

using BptParam = std::tuple<KeyOrder, size_t>;

class BPTreeOrderSweep : public ::testing::TestWithParam<BptParam> {};

TEST_P(BPTreeOrderSweep, InsertLookupScan) {
  auto [order, n] = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 64 * kPageSize);
  BPTree tree(&pool);
  auto keys = MakeKeys(order, n);
  for (uint64_t k : keys) ASSERT_TRUE(tree.Insert(k, ~k).ok());
  EXPECT_EQ(tree.NumEntries(), n);

  // Every key present with its value.
  for (size_t i = 0; i < n; i += 7) {
    auto v = tree.Lookup(keys[i]);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, ~keys[i]);
  }
  // Absent keys rejected.
  EXPECT_FALSE(tree.Lookup(0).ok());
  EXPECT_FALSE(tree.Lookup(2).ok());

  // A full scan enumerates all keys in sorted order.
  std::vector<uint64_t> scanned;
  ASSERT_TRUE(tree.ScanRange(0, ~0ull, [&](uint64_t k, uint64_t) {
                   scanned.push_back(k);
                   return true;
                 }).ok());
  EXPECT_EQ(scanned.size(), n);
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSizes, BPTreeOrderSweep,
    ::testing::Combine(::testing::Values(KeyOrder::kAscending,
                                         KeyOrder::kDescending,
                                         KeyOrder::kRandom, KeyOrder::kZigzag),
                       ::testing::Values(size_t{100}, size_t{2000},
                                         size_t{20000})),
    [](const ::testing::TestParamInfo<BptParam>& info) {
      return std::string(KeyOrderName(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---- buffer pool: capacity sweep -----------------------------------------

class BufferPoolSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferPoolSweep, TreeCorrectUnderAnyPoolSize) {
  size_t frames = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, frames * kPageSize);
  BPTree tree(&pool);
  const uint64_t kN = 5000;
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(tree.Insert(k, k * k).ok());
  for (uint64_t k = 0; k < kN; k += 97) {
    auto v = tree.Lookup(k);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, k * k);
  }
  // Smaller pools must evict; larger pools may not.
  if (frames <= 8) {
    EXPECT_GT(pool.stats().evictions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BufferPoolSweep,
                         ::testing::Values(size_t{4}, size_t{8}, size_t{32},
                                           size_t{128}, size_t{1024}),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "frames" + std::to_string(info.param);
                         });

// ---- heap file: record-size mixes -----------------------------------------

class HeapFileSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(HeapFileSweep, MixedRecordSizesRoundTrip) {
  size_t base_size = GetParam();
  DiskManager disk;
  BufferPool pool(&disk, 16 * kPageSize);
  HeapFile hf(&pool);
  Rng rng(base_size);
  std::map<int, std::pair<Rid, std::string>> records;
  for (int i = 0; i < 500; ++i) {
    size_t len = 1 + rng.NextBounded(base_size);
    std::string rec(len, static_cast<char>('a' + (i % 26)));
    rec += std::to_string(i);
    auto rid = hf.Append({rec.data(), rec.size()});
    ASSERT_TRUE(rid.ok()) << i;
    records[i] = {*rid, rec};
  }
  for (const auto& [i, pair] : records) {
    std::string out;
    ASSERT_TRUE(hf.Read(pair.first, &out).ok()) << i;
    EXPECT_EQ(out, pair.second) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RecordSizes, HeapFileSweep,
                         ::testing::Values(size_t{8}, size_t{200},
                                           size_t{2000}, size_t{7000}),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "bytes" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fgpm
