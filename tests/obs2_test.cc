// Serving-path observability integration tests (ctest label: obs2).
//
// Covers the pieces that only make sense end-to-end over real sockets:
// cross-shard trace stitching against the shard-exec counter, windowed
// /metrics with exemplars that resolve through /debug/traces, trace-ring
// bounding, head-based sampling, client-supplied trace context, the SLO
// watchdog freezing a flight-recorder dump, and the scheduler profiler.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/scheduler.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace fgpm {
namespace {

using net::Client;
using net::QueryRequest;
using net::QueryResponse;
using net::Server;
using net::ServerOptions;

#define SKIP_IF_COMPILED_OUT()                                  \
  if (!FGPM_OBS_ENABLED) {                                      \
    GTEST_SKIP() << "observability compiled out (FGPM_OBS=OFF)"; \
  }

struct ServerFixture {
  Graph g;
  std::unique_ptr<Server> server;

  explicit ServerFixture(ServerOptions opts, uint32_t num_labels = 8,
                         uint64_t seed = 23)
      : g(gen::ScaleFree(300, 3, num_labels, seed)) {
    auto s = Server::Start(&g, opts);
    EXPECT_TRUE(s.ok()) << s.status();
    server = std::move(*s);
  }
  std::unique_ptr<Client> Connect() {
    auto c = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(*c);
  }
};

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  close(fd);
  return out;
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name)->Value();
}

QueryRequest ChecksumRequest(uint64_t id, const std::string& pattern) {
  QueryRequest req;
  req.id = id;
  req.flags = net::kFlagChecksumOnly;
  req.pattern = pattern;
  return req;
}

std::string Hex16(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// The acceptance-criterion test: one sampled cross-shard query over 4
// shards yields ONE stitched trace whose per-shard exec spans sum to
// the server-measured shard-exec time (the fgpm_server_shard_exec_us_total
// delta), within the per-sub microsecond truncation.
TEST(Obs2Test, FourShardStitchedTraceMatchesShardExecCounter) {
  SKIP_IF_COMPILED_OUT();
  ServerOptions opts;
  opts.num_shards = 4;
  opts.trace_requests = true;
  // Two labels per shard: the chain below alternates shard-local and
  // cross-shard edges, so PlanCross scatters one sub-pattern per shard.
  opts.matcher.label_to_shard = {0, 0, 1, 1, 2, 2, 3, 3};
  ServerFixture f(opts);
  auto client = f.Connect();

  const uint64_t exec_before = CounterValue("fgpm_server_shard_exec_us_total");
  auto resp = client->Query(ChecksumRequest(
      1, "L0->L1; L1->L2; L2->L3; L3->L4; L4->L5; L5->L6; L6->L7"));
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_TRUE(resp->ok()) << resp->error;
  const uint64_t exec_delta =
      CounterValue("fgpm_server_shard_exec_us_total") - exec_before;

  std::vector<QueryTrace> traces = f.server->RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const QueryTrace& t = traces.back();
  EXPECT_NE(t.trace_id(), 0u);

  // One stitched trace: root + queue + exec + gather on the origin, plus
  // queue:shardN / exec:shardN pairs grafted from every shard worker.
  bool shard_seen[4] = {false, false, false, false};
  double exec_span_sum_us = 0;
  int exec_spans = 0;
  for (const TraceSpan& s : t.spans()) {
    if (s.name.rfind("exec:shard", 0) == 0) {
      uint32_t shard = static_cast<uint32_t>(
          std::stoul(s.name.substr(strlen("exec:shard"))));
      ASSERT_LT(shard, 4u);
      shard_seen[shard] = true;
      EXPECT_EQ(s.tid, shard) << s.name;
      EXPECT_EQ(s.category, "shard");
      EXPECT_GE(s.parent, 0) << "shard spans must stitch under the request";
      exec_span_sum_us += s.wall_us;
      ++exec_spans;
    }
  }
  for (int sh = 0; sh < 4; ++sh) {
    EXPECT_TRUE(shard_seen[sh]) << "no exec span for shard " << sh;
  }
  // The counter adds floor(ns/1000) per sub-execution from the same
  // timestamps the spans carry, so it can only trail the span sum, by
  // less than 1us per sub.
  EXPECT_GE(exec_span_sum_us + 1e-6, static_cast<double>(exec_delta));
  EXPECT_LT(exec_span_sum_us - static_cast<double>(exec_delta),
            static_cast<double>(exec_spans) + 1.0);

  std::string json = t.ToChromeJson();
  EXPECT_NE(json.find("\"traceId\""), std::string::npos);
  EXPECT_NE(json.find("exec:shard3"), std::string::npos);
  EXPECT_NE(json.find("queue:shard0"), std::string::npos);
  EXPECT_NE(json.find("gather"), std::string::npos);
}

TEST(Obs2Test, MetricsExemplarResolvesToStitchedTrace) {
  SKIP_IF_COMPILED_OUT();
  ServerOptions opts;
  opts.num_shards = 2;
  opts.trace_requests = true;
  ServerFixture f(opts);
  auto client = f.Connect();
  auto resp = client->Query(ChecksumRequest(7, "L0->L1"));
  ASSERT_TRUE(resp.ok() && resp->ok());

  std::vector<QueryTrace> traces = f.server->RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const std::string hex = Hex16(traces.back().trace_id());

  // /metrics carries the windowed series and stamps the trace as the
  // exemplar of its latency bucket.
  std::string metrics = HttpGet(f.server->port(), "/metrics");
  EXPECT_NE(metrics.find("fgpm_server_latency_us_window{quantile=\"p99\"}"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("fgpm_server_latency_us_window{quantile=\"p50\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("# {trace_id=\"" + hex + "\"}"), std::string::npos)
      << metrics;

  // The exemplar's trace_id resolves to the full stitched Chrome trace.
  std::string body =
      HttpGet(f.server->port(), "/debug/traces?trace_id=" + hex);
  EXPECT_NE(body.find("200 OK"), std::string::npos) << body;
  EXPECT_NE(body.find("\"traceId\": \"" + hex + "\""), std::string::npos);
  EXPECT_NE(body.find("traceEvents"), std::string::npos);

  // Unknown ids are a 404, and the bare endpoint lists the ring.
  std::string missing = HttpGet(f.server->port(),
                                "/debug/traces?trace_id=ffffffffffffffff");
  EXPECT_NE(missing.find("404"), std::string::npos);
  std::string index = HttpGet(f.server->port(), "/debug/traces");
  EXPECT_NE(index.find(hex), std::string::npos);
}

TEST(Obs2Test, TraceRingBoundedWithDropCounter) {
  SKIP_IF_COMPILED_OUT();
  ServerOptions opts;
  opts.num_shards = 1;
  opts.trace_requests = true;
  opts.trace_ring = 4;
  ServerFixture f(opts);
  auto client = f.Connect();
  const uint64_t dropped_before = CounterValue("fgpm_trace_dropped_total");
  for (int i = 0; i < 10; ++i) {
    auto resp = client->Query(ChecksumRequest(i, "L0->L1"));
    ASSERT_TRUE(resp.ok() && resp->ok());
  }
  EXPECT_EQ(f.server->RecentTraces().size(), 4u);
  EXPECT_EQ(CounterValue("fgpm_trace_dropped_total") - dropped_before, 6u);
}

TEST(Obs2Test, HeadSamplingTracesEveryNth) {
  SKIP_IF_COMPILED_OUT();
  ServerOptions opts;
  opts.num_shards = 1;
  opts.trace_sample_n = 2;
  ServerFixture f(opts);
  auto client = f.Connect();
  for (int i = 0; i < 10; ++i) {
    auto resp = client->Query(ChecksumRequest(i, "L0->L1"));
    ASSERT_TRUE(resp.ok() && resp->ok());
  }
  std::vector<QueryTrace> traces = f.server->RecentTraces();
  EXPECT_EQ(traces.size(), 5u) << "every 2nd admitted request is traced";
  for (const QueryTrace& t : traces) EXPECT_NE(t.trace_id(), 0u);
}

TEST(Obs2Test, ClientTraceContextPropagates) {
  SKIP_IF_COMPILED_OUT();
  ServerOptions opts;  // neither trace_requests nor sampling enabled
  opts.num_shards = 2;
  ServerFixture f(opts);
  auto client = f.Connect();

  // sampled=false: the context rides the wire but the server must not
  // trace the request.
  QueryRequest unsampled = ChecksumRequest(1, "L0->L1");
  unsampled.has_trace = true;
  unsampled.trace_id = 0x5555;
  unsampled.trace_sampled = false;
  auto resp = client->Query(unsampled);
  ASSERT_TRUE(resp.ok() && resp->ok());
  EXPECT_TRUE(f.server->RecentTraces().empty());

  // sampled=true: the server adopts the caller's trace id and records
  // the parent span so the client can graft our trace under its own.
  QueryRequest sampled = ChecksumRequest(2, "L0->L1");
  sampled.has_trace = true;
  sampled.trace_id = 0x1234cafe;
  sampled.parent_span = 7;
  sampled.trace_sampled = true;
  resp = client->Query(sampled);
  ASSERT_TRUE(resp.ok() && resp->ok());

  std::vector<QueryTrace> traces = f.server->RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces.back().trace_id(), 0x1234cafeu);
  const uint64_t* parent = traces.back().spans()[0].FindArg(
      "client_parent_span");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(*parent, 7u);
}

TEST(Obs2Test, SloBreachFreezesFlightRecorderDump) {
  SKIP_IF_COMPILED_OUT();
  ServerOptions opts;
  opts.num_shards = 1;
  opts.slo_p99_ms = 1;
  // Starve the caches and add simulated disk latency so every query
  // blows well past the 1ms SLO.
  opts.matcher.db.code_cache_capacity = 4;
  opts.matcher.db.buffer_pool_bytes = 32 << 10;
  ServerFixture f(opts, /*num_labels=*/4, /*seed=*/7);
  f.server->matcher()
      ->shard(0)
      ->db()
      .buffer_pool()
      ->disk()
      ->set_simulated_read_latency_us(500);
  auto client = f.Connect();

  const uint64_t breach_before = CounterValue("fgpm_slo_breach_total");
  for (int i = 0; i < 10; ++i) {
    auto resp = client->Query(ChecksumRequest(i, "L0->L1"));
    ASSERT_TRUE(resp.ok() && resp->ok());
  }
  // The watchdog recomputes windowed p99 at most every 250ms; one more
  // slow query after the throttle window guarantees a check that sees
  // the slow samples.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto resp = client->Query(ChecksumRequest(99, "L0->L1"));
  ASSERT_TRUE(resp.ok() && resp->ok());

  EXPECT_GE(CounterValue("fgpm_slo_breach_total") - breach_before, 1u);
  std::string dump = HttpGet(f.server->port(), "/debug/slo");
  EXPECT_NE(dump.find("slo_breach"), std::string::npos) << dump;
  EXPECT_NE(dump.find("slow_query"), std::string::npos);
}

TEST(Obs2Test, FlightRecorderRecordsAndServesEvents) {
  SKIP_IF_COMPILED_OUT();
  obs::FlightRecorder& fr = obs::FlightRecorder::Default();
  fr.Reset();
  obs::RecordFlight(obs::FlightEvent::kAdmissionShed, 7, "drr");
  obs::RecordFlight(obs::FlightEvent::kBackpressurePause);
  EXPECT_GE(fr.EventCount(), 2u);
  std::string dump = fr.DumpJson();
  EXPECT_NE(dump.find("\"event\": \"admission_shed\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"arg\": 7"), std::string::npos);
  EXPECT_NE(dump.find("\"detail\": \"drr\""), std::string::npos);
  EXPECT_NE(dump.find("\"event\": \"backpressure_pause\""), std::string::npos);

  // Server path: the result cache records hit/miss flight events, and
  // the endpoint serves the merged ring as JSON.
  ServerOptions opts;
  opts.matcher.exec.use_result_cache = true;
  ServerFixture f(opts);
  auto client = f.Connect();
  auto r1 = client->Query(ChecksumRequest(1, "L0->L1"));
  ASSERT_TRUE(r1.ok() && r1->ok());
  auto r2 = client->Query(ChecksumRequest(2, "L0->L1"));
  ASSERT_TRUE(r2.ok() && r2->ok());
  std::string body = HttpGet(f.server->port(), "/debug/flightrecorder");
  EXPECT_NE(body.find("application/json"), std::string::npos);
  EXPECT_NE(body.find("\"event\": \"cache_miss\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"event\": \"cache_hit\""), std::string::npos);
}

TEST(Obs2Test, ProfilerCapturesSchedulerLabels) {
  obs::SchedProfiler prof;
  obs::SchedProfiler::Options po;
  po.sample_interval_us = 100;
  prof.Start(po);

  ThreadPool pool(4);
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < until) {
    ScopedSchedLabel label(Scheduler::InternLabel("match;OBS2"));
    pool.ParallelFor(256, 1, [](unsigned, size_t, size_t, size_t) {
      // Each morsel burns ~100us so the sampler reliably observes
      // workers inside labeled regions.
      const auto stop =
          std::chrono::steady_clock::now() + std::chrono::microseconds(100);
      volatile uint64_t sink = 0;
      while (std::chrono::steady_clock::now() < stop) sink = sink + 1;
    });
  }
  prof.Stop();
  EXPECT_FALSE(prof.running());
  EXPECT_GT(prof.SampleCount(), 0u);
  std::string folded = prof.FoldedStacks();
  EXPECT_NE(folded.find("match;OBS2"), std::string::npos) << folded;
  // Label interning dedupes: same text, same pointer.
  EXPECT_EQ(Scheduler::InternLabel("match;OBS2"),
            Scheduler::InternLabel("match;OBS2"));

  prof.Reset();
  EXPECT_EQ(prof.FoldedStacks(), "");
  // Profiling is off again: the per-morsel gate is back to one relaxed
  // load and labels stop being published.
  EXPECT_FALSE(Scheduler::ProfilingEnabled());
}

TEST(Obs2Test, ServerStartsDefaultProfiler) {
  ServerOptions opts;
  opts.num_shards = 2;
  opts.profile_sample_us = 200;
  {
    ServerFixture f(opts);
    EXPECT_TRUE(obs::SchedProfiler::Default().running());
    auto client = f.Connect();
    for (int i = 0; i < 8; ++i) {
      auto resp = client->Query(ChecksumRequest(i, "L0->L1; L1->L2"));
      ASSERT_TRUE(resp.ok() && resp->ok());
    }
    std::string body = HttpGet(f.server->port(), "/debug/profile");
    EXPECT_NE(body.find("200 OK"), std::string::npos);
  }
  // Server shutdown stops the profiler it started.
  EXPECT_FALSE(obs::SchedProfiler::Default().running());
}

}  // namespace
}  // namespace fgpm
