#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.h"
#include "graph/graph_io.h"

namespace fgpm {
namespace {

void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  ASSERT_EQ(a.NumLabels(), b.NumLabels());
  for (LabelId l = 0; l < a.NumLabels(); ++l) {
    EXPECT_EQ(a.LabelName(l), b.LabelName(l));
  }
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.label_of(v), b.label_of(v));
  }
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(GraphIoTest, RoundTripSmall) {
  Graph g;
  NodeId a = g.AddNode("Alpha"), b = g.AddNode("Beta");
  NodeId c = g.AddNode("Alpha");
  ASSERT_TRUE(g.AddEdge(a, b).ok());
  ASSERT_TRUE(g.AddEdge(b, c).ok());
  g.Finalize();

  std::stringstream ss;
  ASSERT_TRUE(WriteGraph(g, ss).ok());
  auto back = ReadGraph(ss);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectGraphsEqual(g, *back);
  EXPECT_TRUE(back->finalized());
}

TEST(GraphIoTest, RoundTripGenerated) {
  Graph g = gen::ErdosRenyi(500, 1500, 7, 11);
  std::stringstream ss;
  ASSERT_TRUE(WriteGraph(g, ss).ok());
  auto back = ReadGraph(ss);
  ASSERT_TRUE(back.ok());
  ExpectGraphsEqual(g, *back);
}

TEST(GraphIoTest, RoundTripViaFile) {
  Graph g = gen::RandomDag(200, 2.0, 4, 13);
  std::string path = ::testing::TempDir() + "/fgpm_io_test.graph";
  ASSERT_TRUE(WriteGraphToFile(g, path).ok());
  auto back = ReadGraphFromFile(path);
  ASSERT_TRUE(back.ok());
  ExpectGraphsEqual(g, *back);
  std::remove(path.c_str());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "fgpm-graph 1\n"
      "\n"
      "labels 2\n"
      "A\n"
      "B\n"
      "# nodes next\n"
      "nodes 2\n"
      "0\n"
      "1\n"
      "edges 1\n"
      "0 1\n");
  auto g = ReadGraph(ss);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadGraphFromFile("/no/such/file.graph").status().code(),
            StatusCode::kNotFound);
}

TEST(GraphIoTest, CorruptionCases) {
  struct Case {
    const char* name;
    const char* content;
  };
  const Case cases[] = {
      {"empty", ""},
      {"bad magic", "not-a-graph 1\n"},
      {"bad version", "fgpm-graph 99\n"},
      {"missing labels", "fgpm-graph 1\nnodes 1\n0\n"},
      {"label out of range",
       "fgpm-graph 1\nlabels 1\nA\nnodes 1\n7\nedges 0\n"},
      {"edge out of range",
       "fgpm-graph 1\nlabels 1\nA\nnodes 1\n0\nedges 1\n0 9\n"},
      {"truncated edges",
       "fgpm-graph 1\nlabels 1\nA\nnodes 1\n0\nedges 2\n0 0\n"},
      {"garbage edge",
       "fgpm-graph 1\nlabels 1\nA\nnodes 2\n0\n0\nedges 1\nx y\n"},
      {"duplicate label",
       "fgpm-graph 1\nlabels 2\nA\nA\nnodes 0\nedges 0\n"},
  };
  for (const Case& c : cases) {
    std::stringstream ss(c.content);
    auto g = ReadGraph(ss);
    EXPECT_FALSE(g.ok()) << c.name;
  }
}

TEST(GraphIoTest, UnsupportedVersionIsUnimplemented) {
  std::stringstream ss("fgpm-graph 2\nlabels 0\nnodes 0\nedges 0\n");
  EXPECT_EQ(ReadGraph(ss).status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace fgpm
