// Persistence: a saved database reopened from disk must answer exactly
// like the in-memory original, across every component.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/serialize.h"
#include "exec/engine.h"
#include "exec/naive_matcher.h"
#include "gdb/database.h"
#include "graph/generators.h"
#include "opt/dps_optimizer.h"

namespace fgpm {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, PrimitivesRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.U8(7);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.F64(3.25);
  w.Str("hello world");
  w.VecU32(std::vector<uint32_t>{1, 2, 3});
  w.VecU64({9, 8});
  ASSERT_TRUE(w.ok());

  BinaryReader r(&ss);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  double f64;
  std::string s;
  std::vector<uint32_t> v32;
  std::vector<uint64_t> v64;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  ASSERT_TRUE(r.VecU32(&v32).ok());
  ASSERT_TRUE(r.VecU64(&v64).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(f64, 3.25);
  EXPECT_EQ(s, "hello world");
  EXPECT_EQ(v32, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(v64, (std::vector<uint64_t>{9, 8}));
}

TEST(SerializeTest, TruncationDetected) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.U32(5);
  BinaryReader r(&ss);
  uint64_t v = 0;
  EXPECT_EQ(r.U64(&v).code(), StatusCode::kCorruption);
}

TEST(PersistTest, SaveRequiresBuiltDatabase) {
  GraphDatabase db;
  EXPECT_EQ(db.Save(TempPath("unbuilt.fgpm")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PersistTest, OpenMissingFileIsNotFound) {
  EXPECT_EQ(GraphDatabase::Open("/no/such/db.fgpm").status().code(),
            StatusCode::kNotFound);
}

TEST(PersistTest, OpenRejectsGarbage) {
  std::string path = TempPath("garbage.fgpm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a database at all, not even close.............";
  }
  auto db = GraphDatabase::Open(path);
  EXPECT_FALSE(db.ok());
  std::remove(path.c_str());
}

TEST(PersistTest, ReopenedDatabaseAnswersIdentically) {
  Graph g = gen::ErdosRenyi(300, 900, 4, 55);
  GraphDatabase original;
  ASSERT_TRUE(original.Build(g).ok());

  std::string path = TempPath("roundtrip.fgpm");
  ASSERT_TRUE(original.Save(path).ok());
  auto reopened = GraphDatabase::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  // Catalog identical.
  const Catalog& a = original.catalog();
  const Catalog& b = (*reopened)->catalog();
  ASSERT_EQ(a.num_labels(), b.num_labels());
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  for (LabelId x = 0; x < a.num_labels(); ++x) {
    EXPECT_EQ(a.LabelName(x), b.LabelName(x));
    EXPECT_EQ(a.ExtentSize(x), b.ExtentSize(x));
    for (LabelId y = 0; y < a.num_labels(); ++y) {
      EXPECT_EQ(a.Stats(x, y).est_pairs, b.Stats(x, y).est_pairs);
      EXPECT_EQ(a.Stats(x, y).num_centers, b.Stats(x, y).num_centers);
    }
  }

  // Base tables identical.
  for (LabelId l = 0; l < a.num_labels(); ++l) {
    EXPECT_EQ(original.table(l).NumTuples(), (*reopened)->table(l).NumTuples());
    for (NodeId v : g.Extent(l)) {
      GraphCodeRecord ra, rb;
      ASSERT_TRUE(original.table(l).Get(v, &ra).ok());
      ASSERT_TRUE((*reopened)->table(l).Get(v, &rb).ok());
      EXPECT_EQ(ra.in, rb.in);
      EXPECT_EQ(ra.out, rb.out);
    }
  }

  // Labeling identical.
  EXPECT_EQ(original.labeling().CoverSize(), (*reopened)->labeling().CoverSize());
  for (NodeId v = 0; v < g.NumNodes(); v += 13) {
    for (NodeId u = 0; u < g.NumNodes(); u += 17) {
      EXPECT_EQ(original.labeling().Reaches(u, v),
                (*reopened)->labeling().Reaches(u, v));
    }
  }

  // Queries through the executor give the same rows.
  Executor exec_a(&original), exec_b(reopened->get());
  auto p = Pattern::Parse("L0->L1; L1->L2");
  ASSERT_TRUE(p.ok());
  auto plan = OptimizeDps(*p, a);
  ASSERT_TRUE(plan.ok());
  auto res_a = exec_a.Execute(*p, *plan);
  auto res_b = exec_b.Execute(*p, *plan);
  ASSERT_TRUE(res_a.ok());
  ASSERT_TRUE(res_b.ok());
  res_a->SortRows();
  res_b->SortRows();
  EXPECT_EQ(res_a->rows, res_b->rows);
  EXPECT_FALSE(res_a->rows.empty());

  std::remove(path.c_str());
}

TEST(PersistTest, ReopenedMatchesNaiveOnXmark) {
  gen::XMarkOptions opts;
  opts.factor = 0.002;
  Graph g = gen::XMarkLike(opts);
  GraphDatabase original;
  ASSERT_TRUE(original.Build(g).ok());
  std::string path = TempPath("xmark.fgpm");
  ASSERT_TRUE(original.Save(path).ok());
  auto reopened = GraphDatabase::Open(path);
  ASSERT_TRUE(reopened.ok());

  auto p = Pattern::Parse("region->item; item->incategory");
  ASSERT_TRUE(p.ok());
  auto plan = OptimizeDps(*p, (*reopened)->catalog());
  ASSERT_TRUE(plan.ok());
  Executor exec(reopened->get());
  auto got = exec.Execute(*p, *plan);
  ASSERT_TRUE(got.ok());
  auto want = NaiveMatch(g, *p);
  ASSERT_TRUE(want.ok());
  got->SortRows();
  want->SortRows();
  EXPECT_EQ(got->rows, want->rows);
  std::remove(path.c_str());
}

TEST(PersistTest, TruncatedDatabaseFileRejected) {
  Graph g = gen::ErdosRenyi(100, 300, 3, 57);
  GraphDatabase db;
  ASSERT_TRUE(db.Build(g).ok());
  std::string path = TempPath("trunc.fgpm");
  ASSERT_TRUE(db.Save(path).ok());
  // Truncate the file to half its size.
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string data = buf.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  auto reopened = GraphDatabase::Open(path);
  EXPECT_FALSE(reopened.ok());
  std::remove(path.c_str());
}


TEST(PersistTest, BitFlipInSavedPageDetected) {
  Graph g = gen::ErdosRenyi(120, 360, 3, 61);
  GraphDatabase db;
  ASSERT_TRUE(db.Build(g).ok());
  std::string path = TempPath("bitflip.fgpm");
  ASSERT_TRUE(db.Save(path).ok());
  // Flip one byte inside the page region (well past the header).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8 + 8 + kPageSize / 2);
    char b = 0;
    f.read(&b, 1);
    f.seekp(8 + 8 + kPageSize / 2);
    b = static_cast<char>(b ^ 0x5a);
    f.write(&b, 1);
  }
  auto reopened = GraphDatabase::Open(path);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PersistTest, CorruptionInjectionHelper) {
  DiskManager disk;
  PageId id = disk.AllocatePage();
  Page before;
  ASSERT_TRUE(disk.ReadPage(id, &before).ok());
  ASSERT_TRUE(disk.CorruptPageForTesting(id, 100).ok());
  Page after;
  ASSERT_TRUE(disk.ReadPage(id, &after).ok());
  EXPECT_NE(before.Read<uint8_t>(100), after.Read<uint8_t>(100));
  EXPECT_EQ(disk.CorruptPageForTesting(id, kPageSize).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(disk.CorruptPageForTesting(99, 0).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace fgpm
