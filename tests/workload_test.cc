#include <gtest/gtest.h>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "workload/datasets.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

TEST(PatternSuiteTest, SuiteSizesMatchPaper) {
  EXPECT_EQ(workload::XmarkPathPatterns().size(), 9u);
  EXPECT_EQ(workload::XmarkTreePatterns().size(), 9u);
  EXPECT_EQ(workload::XmarkGraphPatterns4().size(), 5u);
  EXPECT_EQ(workload::XmarkGraphPatterns5().size(), 5u);
}

TEST(PatternSuiteTest, PathSuiteShapes) {
  auto paths = workload::XmarkPathPatterns();
  // 3x 3-node, 3x 4-node, 3x 5-node; every pattern is a chain.
  for (int i = 0; i < 9; ++i) {
    size_t expect_nodes = 3 + i / 3;
    EXPECT_EQ(paths[i].num_nodes(), expect_nodes) << "P" << (i + 1);
    EXPECT_EQ(paths[i].num_edges(), expect_nodes - 1) << "P" << (i + 1);
    EXPECT_TRUE(paths[i].Validate().ok());
  }
}

TEST(PatternSuiteTest, TreeSuiteShapes) {
  auto trees = workload::XmarkTreePatterns();
  for (int i = 0; i < 9; ++i) {
    size_t expect_nodes = 3 + i / 3;
    EXPECT_EQ(trees[i].num_nodes(), expect_nodes) << "T" << (i + 1);
    EXPECT_EQ(trees[i].num_edges(), expect_nodes - 1) << "T" << (i + 1);
    EXPECT_TRUE(trees[i].Validate().ok());
  }
}

TEST(PatternSuiteTest, GraphSuitesAreNonTree) {
  for (const auto& q : workload::XmarkGraphPatterns4()) {
    EXPECT_EQ(q.num_nodes(), 4u);
    EXPECT_GT(q.num_edges(), q.num_nodes() - 1);  // has a join-back edge
    EXPECT_TRUE(q.Validate().ok());
  }
  for (const auto& q : workload::XmarkGraphPatterns5()) {
    EXPECT_EQ(q.num_nodes(), 5u);
    EXPECT_GT(q.num_edges(), q.num_nodes() - 1);
    EXPECT_TRUE(q.Validate().ok());
  }
}

TEST(PatternSuiteTest, SuitesUseXmarkVocabulary) {
  gen::XMarkOptions opts;
  opts.factor = 0.002;
  Graph g = gen::XMarkLike(opts);
  auto all = workload::XmarkPathPatterns();
  auto trees = workload::XmarkTreePatterns();
  all.insert(all.end(), trees.begin(), trees.end());
  auto q4 = workload::XmarkGraphPatterns4();
  auto q5 = workload::XmarkGraphPatterns5();
  all.insert(all.end(), q4.begin(), q4.end());
  all.insert(all.end(), q5.begin(), q5.end());
  for (const auto& p : all) {
    for (PatternNodeId i = 0; i < p.num_nodes(); ++i) {
      EXPECT_TRUE(g.FindLabel(p.label(i)).has_value())
          << p.ToString() << " label " << p.label(i);
    }
  }
}

TEST(PatternSuiteTest, PathPatternsHaveMatchesOnXmark) {
  gen::XMarkOptions opts;
  opts.factor = 0.005;
  Graph g = gen::XMarkLike(opts);
  auto matcher = GraphMatcher::Create(&g);
  ASSERT_TRUE(matcher.ok());
  for (const auto& p : workload::XmarkPathPatterns()) {
    auto r = (*matcher)->Match(p, {.engine = Engine::kDps});
    ASSERT_TRUE(r.ok()) << p.ToString();
    EXPECT_GT(r->rows.size(), 0u) << p.ToString();
  }
}

TEST(PatternSuiteTest, GenericPath) {
  Pattern p = workload::GenericPath(4);
  EXPECT_EQ(p.num_nodes(), 4u);
  EXPECT_EQ(p.num_edges(), 3u);
  EXPECT_EQ(p.label(0), "L0");
  EXPECT_EQ(p.label(3), "L3");
}

TEST(PatternSuiteTest, RandomPatternsAreValid) {
  Graph g = gen::ErdosRenyi(200, 600, 6, 3);
  auto ps = workload::RandomPatterns(g, 10, 4, 2, 7);
  EXPECT_GE(ps.size(), 5u);
  for (const auto& p : ps) {
    EXPECT_TRUE(p.Validate().ok());
    EXPECT_EQ(p.num_nodes(), 4u);
    EXPECT_GE(p.num_edges(), 3u);
  }
}

TEST(DatasetTest, PaperDatasetsSpec) {
  auto ds = workload::PaperDatasets();
  ASSERT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds[0].name, "20M");
  EXPECT_DOUBLE_EQ(ds[0].factor, 0.2);
  EXPECT_EQ(ds[4].name, "100M");
  EXPECT_DOUBLE_EQ(ds[4].factor, 1.0);
}

TEST(DatasetTest, LoadDatasetScalesNodeCounts) {
  auto ds = workload::PaperDatasets();
  Graph g20 = workload::LoadDataset(ds[0], 0.02);
  Graph g40 = workload::LoadDataset(ds[1], 0.02);
  // 40M has ~2x the nodes of 20M at any fixed scale.
  double ratio = double(g40.NumNodes()) / double(g20.NumNodes());
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(DatasetTest, BenchScaleDefaults) {
  unsetenv("FGPM_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(workload::BenchScaleFromEnv(), 0.1);
  setenv("FGPM_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(workload::BenchScaleFromEnv(), 0.5);
  setenv("FGPM_BENCH_SCALE", "7", 1);
  EXPECT_DOUBLE_EQ(workload::BenchScaleFromEnv(), 1.0);
  setenv("FGPM_BENCH_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(workload::BenchScaleFromEnv(), 0.1);
  unsetenv("FGPM_BENCH_SCALE");
}

}  // namespace
}  // namespace fgpm
