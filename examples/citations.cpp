// Bibliography scenario from the introduction: research-paper citation
// connections. The citation subgraph is a DAG, so this example also
// exercises the TSD baseline and cross-checks all engines.
//
//   $ ./examples/citations [num_papers]
#include <cstdio>
#include <cstdlib>

#include "core/graph_matcher.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace fgpm;
  uint32_t papers = argc > 1 ? std::atoi(argv[1]) : 1500;

  Graph g = gen::CitationNetwork(papers, /*seed=*/7);
  std::printf("citation network: %zu nodes, %zu edges (DAG: %s)\n",
              g.NumNodes(), g.NumEdges(), IsDag(g) ? "yes" : "no");

  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }

  struct Q {
    const char* what;
    const char* pattern;
  };
  const Q queries[] = {
      {"authors of Database papers citing Theory work",
       "Author->Database; Database->Theory"},
      {"venue chains: a venue publication reaching ML and Systems work",
       "Venue->Database; Database->ML; Database->Systems"},
      {"citation collaboration triangle",
       "Author->Database; Author->Theory; Database->Theory"},
  };

  for (const Q& q : queries) {
    std::printf("\n%s\n  pattern: %s\n", q.what, q.pattern);
    auto pattern = Pattern::Parse(q.pattern);
    if (!pattern.ok()) {
      std::fprintf(stderr, "  parse error: %s\n",
                   pattern.status().ToString().c_str());
      continue;
    }
    size_t expected = 0;
    bool first = true;
    for (Engine e :
         {Engine::kDps, Engine::kDp, Engine::kIntDp, Engine::kTsd}) {
      auto r = (*matcher)->Match(*pattern, {.engine = e});
      if (!r.ok()) {
        std::printf("  %-7s error: %s\n", EngineName(e),
                    r.status().ToString().c_str());
        continue;
      }
      std::printf("  %-7s %8zu matches in %8.2f ms\n", EngineName(e),
                  r->rows.size(), r->stats.elapsed_ms);
      if (first) {
        expected = r->rows.size();
        first = false;
      } else if (r->rows.size() != expected) {
        std::printf("  ** engines disagree! **\n");
        return 1;
      }
    }
  }
  return 0;
}
