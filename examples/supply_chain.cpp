// The paper's motivating scenario (Section 1): over a business graph,
// find Supplier, Retailer, Wholeseller and Bank such that the Supplier
// directly or indirectly supplies both the Retailer and the Wholeseller,
// and all of them receive services from the same Bank.
//
//   $ ./examples/supply_chain [companies_per_tier]
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace fgpm;
  uint32_t per_tier = argc > 1 ? std::atoi(argv[1]) : 400;

  Graph g = gen::SupplyChain(per_tier, /*seed=*/2024);
  std::printf("supply-chain graph: %zu companies, %zu relationships\n",
              g.NumNodes(), g.NumEdges());

  WallTimer build_timer;
  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }
  std::printf("database built in %.1f ms (2-hop cover: %llu entries)\n",
              build_timer.ElapsedMillis(),
              (unsigned long long)(*matcher)->db().labeling().CoverSize());

  const char* query =
      "Supplier->Retailer; Supplier->Wholeseller; "
      "Bank->Supplier; Bank->Retailer; Bank->Wholeseller";
  std::printf("\npattern: %s\n\n", query);

  auto pattern = Pattern::Parse(query);
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }

  // Compare the two optimizers of the paper.
  for (Engine e : {Engine::kDp, Engine::kDps}) {
    auto plan = (*matcher)->MakePlan(*pattern, e);
    auto r = (*matcher)->Match(*pattern, {.engine = e});
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", EngineName(e),
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-4s  %8zu matches  %8.2f ms  %7llu buffered page accesses\n",
                EngineName(e), r->rows.size(), r->stats.elapsed_ms,
                (unsigned long long)(r->stats.io.pool_hits +
                                     r->stats.io.pool_misses));
    if (plan.ok()) {
      std::printf("      plan: %s\n", plan->ToString(*pattern).c_str());
    }
  }

  // Show a few concrete matches.
  auto r = (*matcher)->Match(*pattern);
  if (r.ok() && !r->rows.empty()) {
    std::printf("\nexample matches (");
    for (size_t i = 0; i < r->column_labels.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", r->column_labels[i].c_str());
    }
    std::printf("):\n");
    for (size_t i = 0; i < r->rows.size() && i < 5; ++i) {
      std::printf("  (");
      for (size_t j = 0; j < r->rows[i].size(); ++j) {
        std::printf("%s#%u", j ? ", " : "", r->rows[i][j]);
      }
      std::printf(")\n");
    }
  }
  return 0;
}
