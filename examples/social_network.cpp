// Social-network scenario from the introduction: find relationship
// patterns among accounts, communities and content, e.g. influencers
// whose posts reach a topic that a community they belong to also covers.
//
//   $ ./examples/social_network [num_accounts]
#include <cstdio>
#include <cstdlib>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "graph/summary.h"

int main(int argc, char** argv) {
  using namespace fgpm;
  uint32_t accounts = argc > 1 ? std::atoi(argv[1]) : 1500;

  Graph g = gen::SocialNetwork(accounts, /*seed=*/99);
  std::printf("social graph: %s\n\n",
              Summarize(g, /*reach_samples=*/500).ToString().c_str());

  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }

  struct Q {
    const char* what;
    const char* pattern;
  };
  const Q queries[] = {
      {"influencers reaching a community's topic through their posts",
       "Influencer->Post; Post->Topic; Influencer->Community; "
       "Community->Topic"},
      {"members whose comments reach an influencer's post",
       "Member->Comment; Comment->Post; Influencer->Post"},
      {"influence chains: member -> influencer -> community",
       "Member->Influencer; Influencer->Community"},
  };

  for (const Q& q : queries) {
    auto r = (*matcher)->Match(q.pattern);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.what, r.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n  pattern: %s\n  %zu matches in %.2f ms "
                "(optimize %.2f ms, %llu page accesses)\n\n",
                q.what, q.pattern, r->rows.size(), r->stats.elapsed_ms,
                r->stats.optimize_ms,
                (unsigned long long)r->stats.modeled_io_pages);
  }

  // Projection: just the influencers appearing in the first pattern.
  MatchOptions proj;
  proj.projection = {"Influencer"};
  auto who = (*matcher)->Match(
      "Influencer->Post; Post->Topic; Influencer->Community; "
      "Community->Topic",
      proj);
  if (who.ok()) {
    std::printf("distinct influencers in the first pattern: %zu\n",
                who->rows.size());
  }
  return 0;
}
