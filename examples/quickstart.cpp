// Quickstart: builds the paper's Figure 1 data graph, runs the Figure
// 1(b) pattern with the DPS engine and prints every match.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/graph_matcher.h"

int main() {
  using namespace fgpm;

  // Figure 1(a): labels A..E. Node names below mirror the paper (a0,
  // b0..b6, c0..c3, d0..d5, e0..e7).
  Graph g;
  NodeId a0 = g.AddNode("A");
  NodeId b[7], c[4], d[6], e[8];
  for (auto& x : b) x = g.AddNode("B");
  for (auto& x : c) x = g.AddNode("C");
  for (auto& x : d) x = g.AddNode("D");
  for (auto& x : e) x = g.AddNode("E");
  auto edge = [&](NodeId u, NodeId v) {
    Status s = g.AddEdge(u, v);
    if (!s.ok()) {
      std::fprintf(stderr, "AddEdge: %s\n", s.ToString().c_str());
      return;
    }
  };
  edge(a0, c[0]);
  for (int i = 2; i < 7; ++i) edge(a0, b[i]);
  edge(b[0], c[1]);
  edge(b[2], c[1]);
  edge(b[3], c[2]);
  edge(b[4], c[2]);
  edge(b[5], c[3]);
  edge(b[6], c[3]);
  edge(c[0], d[0]);
  edge(c[0], d[1]);
  edge(c[1], d[2]);
  edge(c[1], d[3]);
  edge(c[3], d[4]);
  edge(c[3], d[5]);
  edge(c[2], e[2]);
  edge(d[2], e[1]);
  edge(c[0], e[0]);
  edge(c[1], e[7]);
  g.Finalize();

  // Build the graph database: 2-hop cover, base tables with graph codes,
  // cluster-based R-join index, W-table, statistics.
  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "Create: %s\n", matcher.status().ToString().c_str());
    return 1;
  }

  // Figure 1(b): A->C, B->C, C->D, D->E (reachability conditions).
  const char* query = "A->C; B->C; C->D; D->E";
  std::printf("pattern: %s\n", query);

  auto pattern = Pattern::Parse(query);
  auto plan = (*matcher)->MakePlan(*pattern, Engine::kDps);
  if (plan.ok()) {
    std::printf("DPS plan: %s\n", plan->ToString(*pattern).c_str());
  }

  auto result = (*matcher)->Match(*pattern);
  if (!result.ok()) {
    std::fprintf(stderr, "Match: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu matches (columns:", result->rows.size());
  for (const auto& l : result->column_labels) std::printf(" %s", l.c_str());
  std::printf(")\n");
  for (const auto& row : result->rows) {
    std::printf("  (");
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", row[i]);
    }
    std::printf(")\n");
  }
  std::printf("elapsed: %.3f ms, page reads: %llu, pool hits: %llu\n",
              result->stats.elapsed_ms,
              (unsigned long long)result->stats.io.page_reads,
              (unsigned long long)result->stats.io.pool_hits);
  return 0;
}
