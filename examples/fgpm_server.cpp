// Minimal query-server deployment: generate (or load) a graph, start
// the thread-per-core sharded server, and keep serving until stdin
// closes. While it runs you can poke the HTTP side with curl:
//
//   $ ./examples/fgpm_server --port=7777 --shards=2 &
//   $ curl -s http://127.0.0.1:7777/healthz
//   $ curl -s http://127.0.0.1:7777/metrics | grep fgpm_server
//
// and issue framed queries from C++ via fgpm::net::Client (a demo
// query runs below at startup). Ctrl-D (EOF) stops the server.
#include <cstdio>
#include <string>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "net/client.h"
#include "net/server.h"

int main(int argc, char** argv) {
  using namespace fgpm;

  uint16_t port = 7777;
  uint32_t shards = 2, nodes = 2000, labels = 8, exec_threads = 0;
  std::string load_path, demo = "L0->L1; L1->L2";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) port = std::stoul(arg.substr(7));
    if (arg.rfind("--shards=", 0) == 0) shards = std::stoul(arg.substr(9));
    if (arg.rfind("--nodes=", 0) == 0) nodes = std::stoul(arg.substr(8));
    if (arg.rfind("--labels=", 0) == 0) labels = std::stoul(arg.substr(9));
    if (arg.rfind("--load=", 0) == 0) load_path = arg.substr(7);
    if (arg.rfind("--demo=", 0) == 0) demo = arg.substr(7);
    // Per-query parallelism. Safe at any value: the shared scheduler
    // reserves the server workers as participants, so this widens the
    // morsel fan-out instead of multiplying thread counts (no more
    // shards x exec-threads oversubscription). 0 = one per worker.
    if (arg.rfind("--exec-threads=", 0) == 0) {
      exec_threads = std::stoul(arg.substr(15));
    }
  }

  Graph g;
  if (!load_path.empty()) {
    auto loaded = ReadGraphFromFile(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", load_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(*loaded);
  } else {
    g = gen::ScaleFree(nodes, 3, labels, /*seed=*/42);
  }
  std::printf("graph: %zu nodes, %llu edges\n", (size_t)g.NumNodes(),
              (unsigned long long)g.NumEdges());

  net::ServerOptions opts;
  opts.port = port;
  opts.num_shards = shards;
  opts.trace_requests = true;
  if (exec_threads > 0) opts.matcher.exec.num_threads = exec_threads;
  auto server = net::Server::Start(&g, opts);
  if (!server.ok()) {
    std::fprintf(stderr, "start: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u with %u shard%s\n", (*server)->port(),
              shards, shards == 1 ? "" : "s");
  std::printf("  curl -s http://127.0.0.1:%u/healthz\n", (*server)->port());
  std::printf("  curl -s http://127.0.0.1:%u/metrics | grep fgpm_server\n",
              (*server)->port());

  // One demo round-trip through the framed protocol.
  auto client = net::Client::Connect("127.0.0.1", (*server)->port());
  if (client.ok()) {
    net::QueryRequest req;
    req.id = 1;
    req.pattern = demo;
    auto resp = (*client)->Query(req);
    if (resp.ok() && resp->ok()) {
      std::printf("demo query \"%s\": %zu rows\n", demo.c_str(),
                  resp->rows.size());
    } else {
      std::printf("demo query \"%s\": %s\n", demo.c_str(),
                  resp.ok() ? resp->error.c_str()
                            : resp.status().ToString().c_str());
    }
  }

  std::printf("reading stdin; EOF stops the server\n");
  for (int c; (c = std::getchar()) != EOF;) {
  }
  (*server)->Stop();
  std::printf("stopped\n");
  return 0;
}
