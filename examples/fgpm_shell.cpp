// Interactive shell over the fgpm public API: generate or load graphs,
// build the database, run patterns with any engine, and inspect plans.
//
//   $ ./examples/fgpm_shell            # interactive
//   $ echo "gen xmark 0.005
//           match site->region;region->item
//           explain person->watch" | ./examples/fgpm_shell
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "opt/explain.h"

namespace {

using namespace fgpm;

struct ShellState {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<GraphMatcher> matcher;
  Engine engine = Engine::kDps;
};

bool ParseEngine(const std::string& name, Engine* out) {
  for (Engine e : {Engine::kDps, Engine::kDp, Engine::kCanonical,
                   Engine::kIntDp, Engine::kTsd, Engine::kNaive}) {
    if (name == EngineName(e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  gen xmark <factor>           generate an XMark-like graph\n"
      "  gen er <n> <m> <labels>      generate a random digraph\n"
      "  gen dag <n> <avgdeg> <labels> generate a random DAG\n"
      "  gen supply <per_tier>        generate a supply-chain graph\n"
      "  load <file>                  load a graph (fgpm-graph format)\n"
      "  save <file>                  save the current graph\n"
      "  savedb <file>                persist the built database\n"
      "  opendb <file>                reopen a persisted database\n"
      "  engine <DPS|DP|CANONICAL|INT-DP|TSD|NAIVE>\n"
      "  addedge <u> <v>              insert an edge incrementally\n"
      "  match <pattern>              run a pattern, e.g. A->B;B->C\n"
      "  explain <pattern>            show the optimized plan + estimates\n"
      "  stats                        graph/database statistics\n"
      "  help | quit\n");
}

bool EnsureMatcher(ShellState& st) {
  if (st.matcher) return true;
  if (!st.graph) {
    std::printf("no graph loaded; use 'gen' or 'load' first\n");
    return false;
  }
  auto m = GraphMatcher::Create(st.graph.get());
  if (!m.ok()) {
    std::printf("build failed: %s\n", m.status().ToString().c_str());
    return false;
  }
  st.matcher = *std::move(m);
  std::printf("database built: %zu nodes, %u labels, cover %llu entries\n",
              st.graph->NumNodes(), st.matcher->db().num_labels(),
              (unsigned long long)st.matcher->db().labeling().CoverSize());
  return true;
}

void SetGraph(ShellState& st, Graph g) {
  st.matcher.reset();
  st.graph = std::make_unique<Graph>(std::move(g));
  std::printf("graph: %zu nodes, %zu edges, %zu labels\n",
              st.graph->NumNodes(), st.graph->NumEdges(),
              st.graph->NumLabels());
}

void HandleGen(ShellState& st, std::istringstream& args) {
  std::string kind;
  args >> kind;
  if (kind == "xmark") {
    double factor = 0.005;
    args >> factor;
    SetGraph(st, gen::XMarkLike({.factor = factor, .seed = 42}));
  } else if (kind == "er") {
    uint32_t n = 1000, labels = 5;
    uint64_t m = 3000;
    args >> n >> m >> labels;
    SetGraph(st, gen::ErdosRenyi(n, m, labels, 42));
  } else if (kind == "dag") {
    uint32_t n = 1000, labels = 5;
    double deg = 2.5;
    args >> n >> deg >> labels;
    SetGraph(st, gen::RandomDag(n, deg, labels, 42));
  } else if (kind == "supply") {
    uint32_t per_tier = 200;
    args >> per_tier;
    SetGraph(st, gen::SupplyChain(per_tier, 42));
  } else {
    std::printf("unknown generator '%s'\n", kind.c_str());
  }
}

void HandleMatch(ShellState& st, const std::string& pattern_text) {
  if (!EnsureMatcher(st)) return;
  auto r = st.matcher->Match(pattern_text, {.engine = st.engine});
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%zu matches in %.2f ms (%s), %llu page accesses\n",
              r->rows.size(), r->stats.elapsed_ms, EngineName(st.engine),
              (unsigned long long)r->stats.modeled_io_pages);
  size_t show = std::min<size_t>(r->rows.size(), 5);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  (");
    for (size_t j = 0; j < r->rows[i].size(); ++j) {
      std::printf("%s%s=%u", j ? ", " : "", r->column_labels[j].c_str(),
                  r->rows[i][j]);
    }
    std::printf(")\n");
  }
  if (r->rows.size() > show) {
    std::printf("  ... %zu more\n", r->rows.size() - show);
  }
}

void HandleExplain(ShellState& st, const std::string& pattern_text) {
  if (!EnsureMatcher(st)) return;
  auto pattern = Pattern::Parse(pattern_text);
  if (!pattern.ok()) {
    std::printf("parse error: %s\n", pattern.status().ToString().c_str());
    return;
  }
  Engine plan_engine = st.engine;
  if (plan_engine != Engine::kDp && plan_engine != Engine::kDps &&
      plan_engine != Engine::kCanonical) {
    plan_engine = Engine::kDps;
  }
  auto plan = st.matcher->MakePlan(*pattern, plan_engine);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return;
  }
  auto exp = ExplainPlan(*pattern, *plan, st.matcher->db().catalog());
  if (!exp.ok()) {
    std::printf("explain failed: %s\n", exp.status().ToString().c_str());
    return;
  }
  std::printf("%s plan:\n%s", EngineName(plan_engine),
              exp->ToString().c_str());
}

void HandleStats(ShellState& st) {
  if (!st.graph && !st.matcher) {
    std::printf("no graph loaded\n");
    return;
  }
  if (st.graph) {
    std::printf("graph: %zu nodes, %zu edges, %zu labels\n",
                st.graph->NumNodes(), st.graph->NumEdges(),
                st.graph->NumLabels());
  }
  if (st.matcher) {
    const auto& db = st.matcher->db();
    std::printf("2-hop cover: %llu entries (%.3f per node), %u centers\n",
                (unsigned long long)db.labeling().CoverSize(),
                double(db.labeling().CoverSize()) /
                    std::max<uint64_t>(1, db.NumNodes()),
                db.labeling().num_centers());
    std::printf("R-join index: %llu subclusters, %llu entries; W-table: "
                "%llu label pairs\n",
                (unsigned long long)db.rjoin_index().NumSubclusters(),
                (unsigned long long)db.rjoin_index().TotalEntries(),
                (unsigned long long)db.wtable().NumPairs());
  }
  std::printf("engine: %s\n", EngineName(st.engine));
}

}  // namespace

int main() {
  ShellState st;
  std::printf("fgpm shell — 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "gen") {
      HandleGen(st, ss);
    } else if (cmd == "load") {
      std::string path;
      ss >> path;
      auto g = ReadGraphFromFile(path);
      if (!g.ok()) {
        std::printf("load failed: %s\n", g.status().ToString().c_str());
      } else {
        SetGraph(st, *std::move(g));
      }
    } else if (cmd == "save") {
      std::string path;
      ss >> path;
      if (!st.graph) {
        std::printf("no graph loaded\n");
      } else {
        Status s = WriteGraphToFile(*st.graph, path);
        std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
      }
    } else if (cmd == "savedb") {
      std::string path;
      ss >> path;
      if (!EnsureMatcher(st)) continue;
      Status s = st.matcher->db().Save(path);
      std::printf("%s\n", s.ok() ? "database saved" : s.ToString().c_str());
    } else if (cmd == "opendb") {
      std::string path;
      ss >> path;
      auto db = GraphDatabase::Open(path);
      if (!db.ok()) {
        std::printf("open failed: %s\n", db.status().ToString().c_str());
        continue;
      }
      auto m = GraphMatcher::FromDatabase(*std::move(db));
      if (!m.ok()) {
        std::printf("attach failed: %s\n", m.status().ToString().c_str());
        continue;
      }
      st.graph.reset();  // baselines unavailable without the graph
      st.matcher = *std::move(m);
      std::printf("database opened: %u labels, %llu nodes\n",
                  st.matcher->db().num_labels(),
                  (unsigned long long)st.matcher->db().NumNodes());
    } else if (cmd == "addedge") {
      NodeId u = 0, v = 0;
      ss >> u >> v;
      if (!st.graph) {
        std::printf("no graph loaded\n");
        continue;
      }
      if (!EnsureMatcher(st)) continue;
      Status s = st.graph->AddEdge(u, v);
      if (!s.ok()) {
        std::printf("%s\n", s.ToString().c_str());
        continue;
      }
      st.graph->Finalize();
      s = st.matcher->db().ApplyEdgeInsert(*st.graph, u, v);
      std::printf("%s\n", s.ok() ? "edge applied incrementally"
                                  : s.ToString().c_str());
    } else if (cmd == "engine") {
      std::string name;
      ss >> name;
      if (!ParseEngine(name, &st.engine)) {
        std::printf("unknown engine '%s'\n", name.c_str());
      } else {
        std::printf("engine set to %s\n", EngineName(st.engine));
      }
    } else if (cmd == "match") {
      std::string rest;
      std::getline(ss, rest);
      HandleMatch(st, rest);
    } else if (cmd == "explain") {
      std::string rest;
      std::getline(ss, rest);
      HandleExplain(st, rest);
    } else if (cmd == "stats") {
      HandleStats(st);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
