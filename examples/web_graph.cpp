// Document-web scenario: an XMark-like graph (document trees plus
// ID/IDREF cross links, the paper's data model) queried with the paper's
// own workload suites. Shows plans chosen by DP vs DPS and their I/O.
//
//   $ ./examples/web_graph [xmark_factor]
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "workload/patterns.h"

int main(int argc, char** argv) {
  using namespace fgpm;
  double factor = argc > 1 ? std::atof(argv[1]) : 0.01;

  gen::XMarkOptions opts;
  opts.factor = factor;
  Graph g = gen::XMarkLike(opts);
  std::printf("document graph (XMark-like, factor %.3f): %zu nodes, %zu "
              "edges, %zu labels\n",
              factor, g.NumNodes(), g.NumEdges(), g.NumLabels());

  WallTimer t;
  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }
  const auto& lab = (*matcher)->db().labeling();
  std::printf("built in %.1f ms; 2-hop cover |H| = %llu (|H|/|V| = %.3f)\n\n",
              t.ElapsedMillis(), (unsigned long long)lab.CoverSize(),
              double(lab.CoverSize()) / double(g.NumNodes()));

  auto patterns = workload::XmarkGraphPatterns4();
  auto extra = workload::XmarkGraphPatterns5();
  patterns.insert(patterns.end(), extra.begin(), extra.end());

  std::printf("%-4s %-6s %10s %10s %10s\n", "Q", "engine", "matches",
              "ms", "pages");
  int qi = 1;
  for (const auto& p : patterns) {
    for (Engine e : {Engine::kDp, Engine::kDps}) {
      auto r = (*matcher)->Match(p, {.engine = e});
      if (!r.ok()) {
        std::fprintf(stderr, "Q%d %s: %s\n", qi, EngineName(e),
                     r.status().ToString().c_str());
        return 1;
      }
      std::printf("Q%-3d %-6s %10zu %10.2f %10llu\n", qi, EngineName(e),
                  r->rows.size(), r->stats.elapsed_ms,
                  (unsigned long long)(r->stats.io.pool_hits +
                                       r->stats.io.pool_misses));
    }
    auto plan_dps = (*matcher)->MakePlan(p, Engine::kDps);
    if (plan_dps.ok()) {
      std::printf("     dps plan: %s\n", plan_dps->ToString(p).c_str());
    }
    ++qi;
  }
  return 0;
}
