file(REMOVE_RECURSE
  "CMakeFiles/citations.dir/citations.cpp.o"
  "CMakeFiles/citations.dir/citations.cpp.o.d"
  "citations"
  "citations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
