# Empty compiler generated dependencies file for citations.
# This may be replaced when dependencies are built.
