file(REMOVE_RECURSE
  "CMakeFiles/web_graph.dir/web_graph.cpp.o"
  "CMakeFiles/web_graph.dir/web_graph.cpp.o.d"
  "web_graph"
  "web_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
