# Empty compiler generated dependencies file for web_graph.
# This may be replaced when dependencies are built.
