# Empty compiler generated dependencies file for fgpm_shell.
# This may be replaced when dependencies are built.
