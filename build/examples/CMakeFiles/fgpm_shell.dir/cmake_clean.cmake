file(REMOVE_RECURSE
  "CMakeFiles/fgpm_shell.dir/fgpm_shell.cpp.o"
  "CMakeFiles/fgpm_shell.dir/fgpm_shell.cpp.o.d"
  "fgpm_shell"
  "fgpm_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
