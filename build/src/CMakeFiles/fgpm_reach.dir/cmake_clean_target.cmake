file(REMOVE_RECURSE
  "libfgpm_reach.a"
)
