
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reach/grail.cc" "src/CMakeFiles/fgpm_reach.dir/reach/grail.cc.o" "gcc" "src/CMakeFiles/fgpm_reach.dir/reach/grail.cc.o.d"
  "/root/repo/src/reach/interval.cc" "src/CMakeFiles/fgpm_reach.dir/reach/interval.cc.o" "gcc" "src/CMakeFiles/fgpm_reach.dir/reach/interval.cc.o.d"
  "/root/repo/src/reach/sspi.cc" "src/CMakeFiles/fgpm_reach.dir/reach/sspi.cc.o" "gcc" "src/CMakeFiles/fgpm_reach.dir/reach/sspi.cc.o.d"
  "/root/repo/src/reach/two_hop.cc" "src/CMakeFiles/fgpm_reach.dir/reach/two_hop.cc.o" "gcc" "src/CMakeFiles/fgpm_reach.dir/reach/two_hop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fgpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
