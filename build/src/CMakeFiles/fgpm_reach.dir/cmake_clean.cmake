file(REMOVE_RECURSE
  "CMakeFiles/fgpm_reach.dir/reach/grail.cc.o"
  "CMakeFiles/fgpm_reach.dir/reach/grail.cc.o.d"
  "CMakeFiles/fgpm_reach.dir/reach/interval.cc.o"
  "CMakeFiles/fgpm_reach.dir/reach/interval.cc.o.d"
  "CMakeFiles/fgpm_reach.dir/reach/sspi.cc.o"
  "CMakeFiles/fgpm_reach.dir/reach/sspi.cc.o.d"
  "CMakeFiles/fgpm_reach.dir/reach/two_hop.cc.o"
  "CMakeFiles/fgpm_reach.dir/reach/two_hop.cc.o.d"
  "libfgpm_reach.a"
  "libfgpm_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
