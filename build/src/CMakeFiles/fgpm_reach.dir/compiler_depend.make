# Empty compiler generated dependencies file for fgpm_reach.
# This may be replaced when dependencies are built.
