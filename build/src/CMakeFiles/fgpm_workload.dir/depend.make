# Empty dependencies file for fgpm_workload.
# This may be replaced when dependencies are built.
