file(REMOVE_RECURSE
  "libfgpm_workload.a"
)
