file(REMOVE_RECURSE
  "CMakeFiles/fgpm_workload.dir/workload/datasets.cc.o"
  "CMakeFiles/fgpm_workload.dir/workload/datasets.cc.o.d"
  "CMakeFiles/fgpm_workload.dir/workload/patterns.cc.o"
  "CMakeFiles/fgpm_workload.dir/workload/patterns.cc.o.d"
  "libfgpm_workload.a"
  "libfgpm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
