# Empty compiler generated dependencies file for fgpm_core.
# This may be replaced when dependencies are built.
