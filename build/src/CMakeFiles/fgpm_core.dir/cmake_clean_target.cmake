file(REMOVE_RECURSE
  "libfgpm_core.a"
)
