file(REMOVE_RECURSE
  "CMakeFiles/fgpm_core.dir/core/graph_matcher.cc.o"
  "CMakeFiles/fgpm_core.dir/core/graph_matcher.cc.o.d"
  "libfgpm_core.a"
  "libfgpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
