file(REMOVE_RECURSE
  "libfgpm_baseline.a"
)
