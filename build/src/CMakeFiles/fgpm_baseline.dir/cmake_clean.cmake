file(REMOVE_RECURSE
  "CMakeFiles/fgpm_baseline.dir/baseline/igmj.cc.o"
  "CMakeFiles/fgpm_baseline.dir/baseline/igmj.cc.o.d"
  "CMakeFiles/fgpm_baseline.dir/baseline/tsd.cc.o"
  "CMakeFiles/fgpm_baseline.dir/baseline/tsd.cc.o.d"
  "libfgpm_baseline.a"
  "libfgpm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
