# Empty dependencies file for fgpm_baseline.
# This may be replaced when dependencies are built.
