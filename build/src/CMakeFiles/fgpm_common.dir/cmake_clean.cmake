file(REMOVE_RECURSE
  "CMakeFiles/fgpm_common.dir/common/rng.cc.o"
  "CMakeFiles/fgpm_common.dir/common/rng.cc.o.d"
  "CMakeFiles/fgpm_common.dir/common/status.cc.o"
  "CMakeFiles/fgpm_common.dir/common/status.cc.o.d"
  "libfgpm_common.a"
  "libfgpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
