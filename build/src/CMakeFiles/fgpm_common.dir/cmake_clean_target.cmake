file(REMOVE_RECURSE
  "libfgpm_common.a"
)
