# Empty compiler generated dependencies file for fgpm_common.
# This may be replaced when dependencies are built.
