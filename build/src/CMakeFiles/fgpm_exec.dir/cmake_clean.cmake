file(REMOVE_RECURSE
  "CMakeFiles/fgpm_exec.dir/exec/engine.cc.o"
  "CMakeFiles/fgpm_exec.dir/exec/engine.cc.o.d"
  "CMakeFiles/fgpm_exec.dir/exec/naive_matcher.cc.o"
  "CMakeFiles/fgpm_exec.dir/exec/naive_matcher.cc.o.d"
  "CMakeFiles/fgpm_exec.dir/exec/operators.cc.o"
  "CMakeFiles/fgpm_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/fgpm_exec.dir/exec/plan.cc.o"
  "CMakeFiles/fgpm_exec.dir/exec/plan.cc.o.d"
  "CMakeFiles/fgpm_exec.dir/exec/temporal_table.cc.o"
  "CMakeFiles/fgpm_exec.dir/exec/temporal_table.cc.o.d"
  "libfgpm_exec.a"
  "libfgpm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
