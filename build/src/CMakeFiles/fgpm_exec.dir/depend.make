# Empty dependencies file for fgpm_exec.
# This may be replaced when dependencies are built.
