file(REMOVE_RECURSE
  "libfgpm_exec.a"
)
