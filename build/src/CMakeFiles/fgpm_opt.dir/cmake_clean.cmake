file(REMOVE_RECURSE
  "CMakeFiles/fgpm_opt.dir/opt/cost_model.cc.o"
  "CMakeFiles/fgpm_opt.dir/opt/cost_model.cc.o.d"
  "CMakeFiles/fgpm_opt.dir/opt/dp_optimizer.cc.o"
  "CMakeFiles/fgpm_opt.dir/opt/dp_optimizer.cc.o.d"
  "CMakeFiles/fgpm_opt.dir/opt/dps_optimizer.cc.o"
  "CMakeFiles/fgpm_opt.dir/opt/dps_optimizer.cc.o.d"
  "CMakeFiles/fgpm_opt.dir/opt/explain.cc.o"
  "CMakeFiles/fgpm_opt.dir/opt/explain.cc.o.d"
  "libfgpm_opt.a"
  "libfgpm_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
