# Empty compiler generated dependencies file for fgpm_opt.
# This may be replaced when dependencies are built.
