file(REMOVE_RECURSE
  "libfgpm_opt.a"
)
