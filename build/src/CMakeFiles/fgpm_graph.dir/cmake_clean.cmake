file(REMOVE_RECURSE
  "CMakeFiles/fgpm_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/fgpm_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/fgpm_graph.dir/graph/generators.cc.o"
  "CMakeFiles/fgpm_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/fgpm_graph.dir/graph/graph.cc.o"
  "CMakeFiles/fgpm_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/fgpm_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/fgpm_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/fgpm_graph.dir/graph/reach_oracle.cc.o"
  "CMakeFiles/fgpm_graph.dir/graph/reach_oracle.cc.o.d"
  "CMakeFiles/fgpm_graph.dir/graph/summary.cc.o"
  "CMakeFiles/fgpm_graph.dir/graph/summary.cc.o.d"
  "libfgpm_graph.a"
  "libfgpm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
