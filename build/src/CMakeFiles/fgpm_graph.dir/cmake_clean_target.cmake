file(REMOVE_RECURSE
  "libfgpm_graph.a"
)
