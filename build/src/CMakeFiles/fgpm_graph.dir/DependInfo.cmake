
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/fgpm_graph.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/fgpm_graph.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/fgpm_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/fgpm_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/fgpm_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/fgpm_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/fgpm_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/fgpm_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/reach_oracle.cc" "src/CMakeFiles/fgpm_graph.dir/graph/reach_oracle.cc.o" "gcc" "src/CMakeFiles/fgpm_graph.dir/graph/reach_oracle.cc.o.d"
  "/root/repo/src/graph/summary.cc" "src/CMakeFiles/fgpm_graph.dir/graph/summary.cc.o" "gcc" "src/CMakeFiles/fgpm_graph.dir/graph/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fgpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
