# Empty dependencies file for fgpm_graph.
# This may be replaced when dependencies are built.
