# Empty dependencies file for fgpm_gdb.
# This may be replaced when dependencies are built.
