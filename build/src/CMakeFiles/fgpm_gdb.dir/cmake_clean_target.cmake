file(REMOVE_RECURSE
  "libfgpm_gdb.a"
)
