file(REMOVE_RECURSE
  "CMakeFiles/fgpm_gdb.dir/gdb/base_table.cc.o"
  "CMakeFiles/fgpm_gdb.dir/gdb/base_table.cc.o.d"
  "CMakeFiles/fgpm_gdb.dir/gdb/catalog.cc.o"
  "CMakeFiles/fgpm_gdb.dir/gdb/catalog.cc.o.d"
  "CMakeFiles/fgpm_gdb.dir/gdb/database.cc.o"
  "CMakeFiles/fgpm_gdb.dir/gdb/database.cc.o.d"
  "CMakeFiles/fgpm_gdb.dir/gdb/graph_codes.cc.o"
  "CMakeFiles/fgpm_gdb.dir/gdb/graph_codes.cc.o.d"
  "CMakeFiles/fgpm_gdb.dir/gdb/rjoin_index.cc.o"
  "CMakeFiles/fgpm_gdb.dir/gdb/rjoin_index.cc.o.d"
  "CMakeFiles/fgpm_gdb.dir/gdb/wtable.cc.o"
  "CMakeFiles/fgpm_gdb.dir/gdb/wtable.cc.o.d"
  "libfgpm_gdb.a"
  "libfgpm_gdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_gdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
