
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdb/base_table.cc" "src/CMakeFiles/fgpm_gdb.dir/gdb/base_table.cc.o" "gcc" "src/CMakeFiles/fgpm_gdb.dir/gdb/base_table.cc.o.d"
  "/root/repo/src/gdb/catalog.cc" "src/CMakeFiles/fgpm_gdb.dir/gdb/catalog.cc.o" "gcc" "src/CMakeFiles/fgpm_gdb.dir/gdb/catalog.cc.o.d"
  "/root/repo/src/gdb/database.cc" "src/CMakeFiles/fgpm_gdb.dir/gdb/database.cc.o" "gcc" "src/CMakeFiles/fgpm_gdb.dir/gdb/database.cc.o.d"
  "/root/repo/src/gdb/graph_codes.cc" "src/CMakeFiles/fgpm_gdb.dir/gdb/graph_codes.cc.o" "gcc" "src/CMakeFiles/fgpm_gdb.dir/gdb/graph_codes.cc.o.d"
  "/root/repo/src/gdb/rjoin_index.cc" "src/CMakeFiles/fgpm_gdb.dir/gdb/rjoin_index.cc.o" "gcc" "src/CMakeFiles/fgpm_gdb.dir/gdb/rjoin_index.cc.o.d"
  "/root/repo/src/gdb/wtable.cc" "src/CMakeFiles/fgpm_gdb.dir/gdb/wtable.cc.o" "gcc" "src/CMakeFiles/fgpm_gdb.dir/gdb/wtable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fgpm_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
