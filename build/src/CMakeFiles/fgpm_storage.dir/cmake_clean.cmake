file(REMOVE_RECURSE
  "CMakeFiles/fgpm_storage.dir/storage/bptree.cc.o"
  "CMakeFiles/fgpm_storage.dir/storage/bptree.cc.o.d"
  "CMakeFiles/fgpm_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/fgpm_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/fgpm_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/fgpm_storage.dir/storage/disk_manager.cc.o.d"
  "CMakeFiles/fgpm_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/fgpm_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/fgpm_storage.dir/storage/slotted_page.cc.o"
  "CMakeFiles/fgpm_storage.dir/storage/slotted_page.cc.o.d"
  "libfgpm_storage.a"
  "libfgpm_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
