file(REMOVE_RECURSE
  "libfgpm_storage.a"
)
