# Empty dependencies file for fgpm_storage.
# This may be replaced when dependencies are built.
