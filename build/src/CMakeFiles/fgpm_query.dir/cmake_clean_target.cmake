file(REMOVE_RECURSE
  "libfgpm_query.a"
)
