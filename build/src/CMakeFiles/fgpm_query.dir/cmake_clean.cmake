file(REMOVE_RECURSE
  "CMakeFiles/fgpm_query.dir/query/pattern.cc.o"
  "CMakeFiles/fgpm_query.dir/query/pattern.cc.o.d"
  "libfgpm_query.a"
  "libfgpm_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpm_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
