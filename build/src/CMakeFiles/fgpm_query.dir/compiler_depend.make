# Empty compiler generated dependencies file for fgpm_query.
# This may be replaced when dependencies are built.
