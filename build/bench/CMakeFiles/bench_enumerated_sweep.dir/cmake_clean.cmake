file(REMOVE_RECURSE
  "CMakeFiles/bench_enumerated_sweep.dir/bench_enumerated_sweep.cc.o"
  "CMakeFiles/bench_enumerated_sweep.dir/bench_enumerated_sweep.cc.o.d"
  "bench_enumerated_sweep"
  "bench_enumerated_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enumerated_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
