# Empty dependencies file for bench_enumerated_sweep.
# This may be replaced when dependencies are built.
