file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dp_vs_dps.dir/bench_fig6_dp_vs_dps.cc.o"
  "CMakeFiles/bench_fig6_dp_vs_dps.dir/bench_fig6_dp_vs_dps.cc.o.d"
  "bench_fig6_dp_vs_dps"
  "bench_fig6_dp_vs_dps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dp_vs_dps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
