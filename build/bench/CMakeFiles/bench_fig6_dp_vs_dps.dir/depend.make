# Empty dependencies file for bench_fig6_dp_vs_dps.
# This may be replaced when dependencies are built.
