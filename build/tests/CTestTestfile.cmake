# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/storage_param_test[1]_include.cmake")
include("/root/repo/build/tests/reach_test[1]_include.cmake")
include("/root/repo/build/tests/gdb_test[1]_include.cmake")
include("/root/repo/build/tests/persist_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/dps_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
