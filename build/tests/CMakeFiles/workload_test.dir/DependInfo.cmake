
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fgpm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_gdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_reach.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fgpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
