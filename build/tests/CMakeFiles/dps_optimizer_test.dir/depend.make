# Empty dependencies file for dps_optimizer_test.
# This may be replaced when dependencies are built.
