file(REMOVE_RECURSE
  "CMakeFiles/dps_optimizer_test.dir/dps_optimizer_test.cc.o"
  "CMakeFiles/dps_optimizer_test.dir/dps_optimizer_test.cc.o.d"
  "dps_optimizer_test"
  "dps_optimizer_test.pdb"
  "dps_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
