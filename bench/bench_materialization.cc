// Eager vs factorized intermediate representation (ISSUE 4):
//
// Runs fig5-style path and tree patterns over layered synthetic DAGs
// whose per-edge fanout is exact (each pattern edge joins two disjoint
// node groups wired with f random edges per source node), so the
// intermediate-table profile is controlled: rows grow geometrically
// along the fetch chain, peak at the last wide fetch, then collapse at
// a sparse final leaf that only a small fraction of the penultimate
// group connects to. Late pruning after a high-fanout peak is exactly
// the regime factorized tables target — eager execution re-widens the
// peak intermediate row by row, factorized appends (parent, value)
// pairs and materializes once at output.
//
// Both modes run the SAME hand-built left-deep plan (HPSJ base join,
// then filter+fetch per node in breadth-first pattern order), so
// results must be row-identical in identical order; the bench checks
// that for every (workload, thread count) cell. Times are best-of-N.
//
// Results go to BENCH_materialization.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "exec/plan.h"

namespace fgpm {
namespace {

struct GroupSpec {
  std::string label;
  uint32_t width = 0;
};

// One pattern edge plus its data wiring: every source-group node is an
// edge source with probability `density`, and each source gets `fanout`
// distinct random targets in the target group.
struct EdgeSpec {
  std::string from, to;
  uint32_t fanout = 1;
  double density = 1.0;
};

struct Workload {
  std::string name;
  std::vector<GroupSpec> groups;
  std::vector<EdgeSpec> edges;  // binding order: from is always bound first

  std::string PatternText() const {
    std::string s;
    for (const EdgeSpec& e : edges) {
      if (!s.empty()) s += "; ";
      s += e.from + "->" + e.to;
    }
    return s;
  }
};

Graph BuildLayeredGraph(const Workload& w, uint64_t seed) {
  Graph g;
  Rng rng(seed);
  std::vector<std::vector<NodeId>> ids(w.groups.size());
  for (size_t gi = 0; gi < w.groups.size(); ++gi) {
    ids[gi].reserve(w.groups[gi].width);
    for (uint32_t i = 0; i < w.groups[gi].width; ++i) {
      ids[gi].push_back(g.AddNode(w.groups[gi].label));
    }
  }
  auto group_of = [&](const std::string& label) -> size_t {
    for (size_t gi = 0; gi < w.groups.size(); ++gi) {
      if (w.groups[gi].label == label) return gi;
    }
    FGPM_CHECK(false);
    return 0;
  };
  for (const EdgeSpec& e : w.edges) {
    const auto& src = ids[group_of(e.from)];
    const auto& dst = ids[group_of(e.to)];
    FGPM_CHECK(dst.size() >= e.fanout);
    bool any = false;
    for (size_t i = 0; i < src.size(); ++i) {
      // Always keep at least one source so the join is never empty.
      if (!rng.NextBernoulli(e.density) && !(i + 1 == src.size() && !any)) {
        continue;
      }
      any = true;
      std::vector<NodeId> targets;
      while (targets.size() < e.fanout) {
        NodeId v = dst[rng.NextBounded(dst.size())];
        if (std::find(targets.begin(), targets.end(), v) == targets.end()) {
          targets.push_back(v);
        }
      }
      for (NodeId v : targets) FGPM_CHECK(g.AddEdge(src[i], v).ok());
    }
  }
  g.Finalize();
  return g;
}

// The canonical left-deep plan for a workload: HPSJ on the first edge,
// then filter + fetch per remaining edge in spec order (the source
// endpoint is always bound by then). Identical for both modes, so the
// measured difference is purely the intermediate representation.
Plan BuildPlan(const Workload& w, const Pattern& p) {
  auto node_of = [&](const std::string& label) -> PatternNodeId {
    for (PatternNodeId i = 0; i < p.num_nodes(); ++i) {
      if (p.label(i) == label) return i;
    }
    FGPM_CHECK(false);
    return 0;
  };
  auto edge_of = [&](const EdgeSpec& e) -> uint32_t {
    PatternNodeId f = node_of(e.from), t = node_of(e.to);
    for (uint32_t i = 0; i < p.edges().size(); ++i) {
      if (p.edges()[i].from == f && p.edges()[i].to == t) return i;
    }
    FGPM_CHECK(false);
    return 0;
  };
  Plan plan;
  plan.steps.push_back(PlanStep::HpsjBase(edge_of(w.edges[0])));
  for (size_t i = 1; i < w.edges.size(); ++i) {
    uint32_t e = edge_of(w.edges[i]);
    plan.steps.push_back(PlanStep::Filter({{e, /*bound_is_source=*/true}}));
    plan.steps.push_back(PlanStep::Fetch(e, /*bound_is_source=*/true));
  }
  FGPM_CHECK(plan.Validate(p).ok());
  return plan;
}

// fig5-style path: a six-step fetch chain with fanout f, pruned by a
// sparse final leaf (only `density` of the penultimate group connects).
Workload PathWorkload(uint32_t f, double leaf_density) {
  Workload w;
  w.name = "fig5_path";
  w.groups = {{"P0", 32},  {"P1", 256}, {"P2", 256}, {"P3", 256},
              {"P4", 256}, {"P5", 256}, {"P6", 64}};
  for (int i = 0; i + 1 < 6; ++i) {
    w.edges.push_back({"P" + std::to_string(i), "P" + std::to_string(i + 1),
                       f, 1.0});
  }
  w.edges.push_back({"P5", "P6", 2, leaf_density});
  return w;
}

// fig5-style tree: fanout-1 attribute leaves off the root keep the
// intermediate WIDE while a fanout-f chain makes it TALL; the sparse
// leaf prunes after the peak. Eager execution copies the full width at
// every fetch of the chain; factorized copies two ids per row.
Workload TreeWorkload(uint32_t f, double leaf_density) {
  Workload w;
  w.name = "fig5_tree";
  w.groups = {{"T0", 32},  {"A1", 64},  {"A2", 64},  {"A3", 64},
              {"A4", 64},  {"C1", 256}, {"C2", 256}, {"C3", 256},
              {"C4", 256}, {"C5", 256}, {"S", 64}};
  for (int i = 1; i <= 4; ++i) {
    w.edges.push_back({"T0", "A" + std::to_string(i), 1, 1.0});
  }
  w.edges.push_back({"T0", "C1", f, 1.0});
  for (int i = 1; i <= 4; ++i) {
    w.edges.push_back({"C" + std::to_string(i), "C" + std::to_string(i + 1),
                       f, 1.0});
  }
  w.edges.push_back({"C5", "S", 2, leaf_density});
  return w;
}

struct Cell {
  unsigned threads = 0;
  double eager_ms = 0;
  double factorized_ms = 0;
  double speedup = 0;
  uint64_t rows = 0;
  uint64_t peak_rows = 0;            // max intermediate (from step_rows)
  uint64_t copy_bytes_avoided = 0;   // factorized run
  uint64_t eager_materialized = 0;   // rows written row-major by eager
};

struct WorkloadResult {
  Workload w;
  std::string pattern;
  size_t nodes = 0, edges = 0;
  std::vector<Cell> cells;
};

WorkloadResult RunWorkload(const Workload& w, uint64_t seed, int reps) {
  WorkloadResult out;
  out.w = w;
  out.pattern = w.PatternText();

  Graph g = BuildLayeredGraph(w, seed);
  out.nodes = g.NumNodes();
  out.edges = g.NumEdges();
  GraphDatabase db;
  FGPM_CHECK(db.Build(g).ok());

  auto p = Pattern::Parse(out.pattern);
  FGPM_CHECK(p.ok());
  Plan plan = BuildPlan(w, *p);

  std::printf("%s: %zu nodes, %zu edges, pattern %zu nodes / %zu edges\n",
              w.name.c_str(), out.nodes, out.edges, (size_t)p->num_nodes(),
              p->edges().size());

  for (unsigned threads : {1u, 4u, 8u}) {
    Cell cell;
    cell.threads = threads;
    std::vector<std::vector<NodeId>> eager_rows;
    for (Materialization mode :
         {Materialization::kEager, Materialization::kFactorized}) {
      Executor exec(&db, ExecOptions{.num_threads = threads,
                                     .materialization = mode});
      double best = bench::BestOfMs(reps, [&](int rep) {
        auto r = exec.Execute(*p, plan);
        FGPM_CHECK(r.ok());
        double ms = r->stats.elapsed_ms;
        if (rep == 0) {
          cell.rows = r->rows.size();
          for (uint64_t sr : r->stats.step_rows) {
            cell.peak_rows = std::max(cell.peak_rows, sr);
          }
          if (mode == Materialization::kEager) {
            cell.eager_materialized = r->stats.operators.rows_materialized;
            eager_rows = std::move(r->rows);
          } else {
            cell.copy_bytes_avoided = r->stats.operators.copy_bytes_avoided;
            // Same plan, same database: identical rows in identical
            // ORDER (the operator contract), not just as sets.
            FGPM_CHECK(r->rows == eager_rows);
          }
        }
        return ms;
      });
      (mode == Materialization::kEager ? cell.eager_ms
                                       : cell.factorized_ms) = best;
    }
    cell.speedup =
        cell.factorized_ms > 0 ? cell.eager_ms / cell.factorized_ms : 0;
    std::printf(
        "  %u thread%s: eager %8.2f ms, factorized %8.2f ms  %5.2fx   "
        "(%llu rows, peak %llu, %.1f MB copies avoided)\n",
        threads, threads == 1 ? " " : "s", cell.eager_ms, cell.factorized_ms,
        cell.speedup, (unsigned long long)cell.rows,
        (unsigned long long)cell.peak_rows,
        double(cell.copy_bytes_avoided) / (1024.0 * 1024.0));
    std::fflush(stdout);
    out.cells.push_back(cell);
  }
  return out;
}

}  // namespace
}  // namespace fgpm

int main(int argc, char** argv) {
  using namespace fgpm;
  uint32_t fanout = 8;
  double leaf_density = 0.05;
  int reps = 3;
  uint64_t seed = 0xfac70;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--fanout=", 0) == 0) fanout = std::stoul(arg.substr(9));
    if (arg.rfind("--leaf-density=", 0) == 0) {
      leaf_density = std::stod(arg.substr(15));
    }
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
    if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
  }

  bench::PrintHeader(
      "Materialization A/B — eager vs factorized temporal tables",
      "same fixed plan per workload; row-identical results required; "
      "best-of-N elapsed ms per (mode, threads)",
      1.0);
  std::printf("fanout %u, leaf density %.3f, %d reps\n\n", fanout,
              leaf_density, reps);

  std::vector<WorkloadResult> results;
  results.push_back(RunWorkload(PathWorkload(fanout, leaf_density), seed,
                                reps));
  results.push_back(RunWorkload(TreeWorkload(fanout, leaf_density), seed + 1,
                                reps));

  double tree_min = 1e300, tree_max = 0, path_min = 1e300;
  for (const WorkloadResult& r : results) {
    for (const Cell& c : r.cells) {
      if (r.w.name == "fig5_tree") {
        tree_min = std::min(tree_min, c.speedup);
        tree_max = std::max(tree_max, c.speedup);
      } else {
        path_min = std::min(path_min, c.speedup);
      }
    }
  }
  std::printf("\ntree speedup: %.2fx-%.2fx across thread counts; "
              "path min: %.2fx\n",
              tree_min, tree_max, path_min);

  FILE* f = std::fopen("BENCH_materialization.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"materialization\",\n"
               "  \"fanout\": %u,\n  \"leaf_density\": %.3f,\n"
               "  \"reps\": %d,\n  \"identical_rows\": true,\n"
               "  \"workloads\": [\n",
               fanout, leaf_density, reps);
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"pattern\": \"%s\",\n"
                 "     \"graph_nodes\": %zu, \"graph_edges\": %zu,\n"
                 "     \"cells\": [\n",
                 r.w.name.c_str(), r.pattern.c_str(), r.nodes, r.edges);
    for (size_t j = 0; j < r.cells.size(); ++j) {
      const Cell& c = r.cells[j];
      std::fprintf(
          f,
          "      {\"threads\": %u, \"eager_ms\": %.3f, "
          "\"factorized_ms\": %.3f, \"speedup\": %.3f,\n"
          "       \"rows\": %llu, \"peak_intermediate_rows\": %llu, "
          "\"copy_bytes_avoided\": %llu, "
          "\"eager_rows_materialized\": %llu}%s\n",
          c.threads, c.eager_ms, c.factorized_ms, c.speedup,
          (unsigned long long)c.rows, (unsigned long long)c.peak_rows,
          (unsigned long long)c.copy_bytes_avoided,
          (unsigned long long)c.eager_materialized,
          j + 1 < r.cells.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"speedups\": {\"tree_min\": %.3f, "
               "\"tree_max\": %.3f, \"path_min\": %.3f}\n}\n",
               tree_min, tree_max, path_min);
  std::fclose(f);
  std::printf("wrote BENCH_materialization.json\n");
  return 0;
}
