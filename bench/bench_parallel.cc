// Parallel engine benchmark: the HPSJ hot path (the R-join that
// dominates DP plans) against the seed implementation it replaced.
//
//   baseline    — per-pair std::unordered_set dedup, one center at a
//                 time (the pre-parallel HpsjBaseJoin, replicated here).
//   hpsj t=N    — chunked operator: thread-local packed-pair buffers,
//                 merged with one global sort + unique, N-way pool.
//
// The dedup restructuring is a win even at t=1; extra threads scale the
// center fan-out on multi-core hosts. Also reports filter+fetch plan
// execution and parallel 2-hop construction times. Prints the
// baseline/parallel speedup last so the ">= 2x at 4+ threads"
// acceptance line is easy to eyeball.
#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/graph_matcher.h"
#include "exec/operators.h"
#include "graph/generators.h"
#include "reach/two_hop.h"

namespace fgpm {
namespace {

// The seed HpsjBaseJoin inner loop: hash-set dedup per emitted pair.
Status SeedStyleHpsj(const GraphDatabase& db, const Pattern& pattern,
                     const std::vector<LabelId>& node_labels, uint32_t edge,
                     TemporalTable* out) {
  const PatternEdge& e = pattern.edges()[edge];
  LabelId x = node_labels[e.from], y = node_labels[e.to];
  out->AddColumn(e.from);
  out->AddColumn(e.to);
  std::vector<CenterId> centers;
  FGPM_RETURN_IF_ERROR(db.wtable().Lookup(x, y, &centers));
  std::unordered_set<uint64_t> seen;
  for (CenterId w : centers) {
    std::vector<NodeId> fs, ts;
    FGPM_RETURN_IF_ERROR(db.rjoin_index().GetF(w, x, &fs));
    FGPM_RETURN_IF_ERROR(db.rjoin_index().GetT(w, y, &ts));
    for (NodeId u : fs) {
      for (NodeId v : ts) {
        if (seen.insert(PackPair(u, v)).second) out->AppendRow({u, v});
      }
    }
  }
  return Status::OK();
}

double MedianMs(std::vector<double>& times) {
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct HpsjTimings {
  double baseline_ms = 0;
  double t1_ms = 0;
  double t4_ms = 0;
  double t8_ms = 0;
};

HpsjTimings BenchHpsj(const GraphDatabase& db, const Pattern& pattern,
                      const std::vector<LabelId>& node_labels,
                      int reps) {
  HpsjTimings out;
  ThreadPool pool4(4);
  ThreadPool pool8(8);
  auto run = [&](ThreadPool* pool, bool seed_style) {
    std::vector<double> times;
    size_t rows = 0;
    for (int r = 0; r < reps; ++r) {
      TemporalTable t;
      OperatorStats stats;
      WallTimer timer;
      Status s = seed_style
                     ? SeedStyleHpsj(db, pattern, node_labels, 0, &t)
                     : HpsjBaseJoin(db, pattern, node_labels, 0, &t, &stats,
                                    pool);
      times.push_back(timer.ElapsedMillis());
      FGPM_CHECK(s.ok());
      rows = t.NumRows();
    }
    std::printf("  rows=%zu\n", rows);
    return MedianMs(times);
  };
  std::printf("hpsj baseline (hash-set dedup):");
  out.baseline_ms = run(nullptr, true);
  std::printf("hpsj t=1 (sort+unique):");
  out.t1_ms = run(nullptr, false);
  std::printf("hpsj t=4:");
  out.t4_ms = run(&pool4, false);
  std::printf("hpsj t=8:");
  out.t8_ms = run(&pool8, false);
  return out;
}

}  // namespace
}  // namespace fgpm

int main() {
  using namespace fgpm;

  // Large-output R-join workload: a three-layer DAG whose middle nodes
  // are the natural 2-hop centers. A source-target pair can be
  // connected through several distinct middles (so dedup is exercised),
  // and the unique pair set is large enough (~18 M) that a shared hash
  // set cannot stay cache-resident — the regime the R-join hot path
  // actually hits on the paper's datasets, and the one the packed-pair
  // sort dedup targets. (Dense cyclic ER is unusable here: one giant
  // SCC makes the join output quadratic in the graph.)
  constexpr uint32_t kSources = 6000, kTargets = 6000, kMiddles = 600;
  Graph g;
  {
    Rng rng(7);
    std::vector<NodeId> src, mid, tgt;
    for (uint32_t i = 0; i < kSources; ++i) src.push_back(g.AddNode("L0"));
    for (uint32_t i = 0; i < kTargets; ++i) tgt.push_back(g.AddNode("L1"));
    for (uint32_t i = 0; i < kMiddles; ++i) mid.push_back(g.AddNode("L2"));
    for (NodeId s : src) {
      for (int k = 0; k < 20; ++k) {
        Status st = g.AddEdge(s, mid[rng.NextBounded(kMiddles)]);
        (void)st;  // duplicate edges rejected; density is approximate
      }
    }
    for (NodeId m : mid) {
      for (int k = 0; k < 200; ++k) {
        Status st = g.AddEdge(m, tgt[rng.NextBounded(kTargets)]);
        (void)st;
      }
    }
    g.Finalize();
  }
  auto matcher = GraphMatcher::Create(&g);
  FGPM_CHECK(matcher.ok());
  GraphDatabase& db = (*matcher)->db();

  auto pattern = Pattern::Parse("L0->L1");
  FGPM_CHECK(pattern.ok());
  std::vector<LabelId> node_labels(pattern->num_nodes());
  for (PatternNodeId i = 0; i < pattern->num_nodes(); ++i) {
    auto l = db.catalog().FindLabel(pattern->label(i));
    FGPM_CHECK(l.has_value());
    node_labels[i] = *l;
  }

  HpsjTimings hpsj = BenchHpsj(db, *pattern, node_labels, 3);

  // Full DPS plan (filter+fetch path) at 1 vs 4 threads.
  auto bench_plan = [&](unsigned threads) {
    Executor exec(&db, ExecOptions{.num_threads = threads});
    std::vector<double> times;
    auto p3 = Pattern::Parse("L0->L2; L2->L1");
    FGPM_CHECK(p3.ok());
    auto plan = (*matcher)->MakePlan(*p3, Engine::kDps);
    FGPM_CHECK(plan.ok());
    uint64_t rows = 0;
    for (int r = 0; r < 3; ++r) {
      WallTimer timer;
      auto res = exec.Execute(*p3, *plan);
      times.push_back(timer.ElapsedMillis());
      FGPM_CHECK(res.ok());
      rows = res->stats.result_rows;
    }
    std::printf("dps plan t=%u: %8.2f ms  (rows=%llu)\n", threads,
                MedianMs(times), static_cast<unsigned long long>(rows));
    return MedianMs(times);
  };
  bench_plan(1);
  bench_plan(4);

  // Parallel 2-hop cover construction.
  for (unsigned t : {1u, 4u}) {
    WallTimer timer;
    TwoHopLabeling lab = BuildTwoHopPruned(g, t);
    std::printf("two-hop build t=%u: %8.2f ms  (|H|=%llu)\n", t,
                timer.ElapsedMillis(),
                static_cast<unsigned long long>(lab.CoverSize()));
  }

  std::printf(
      "\nhpsj baseline %.2f ms | t=1 %.2f ms | t=4 %.2f ms | t=8 %.2f ms\n",
      hpsj.baseline_ms, hpsj.t1_ms, hpsj.t4_ms, hpsj.t8_ms);
  std::printf("hpsj speedup vs seed baseline: t=1 %.2fx, t=4 %.2fx, t=8 %.2fx\n",
              hpsj.baseline_ms / hpsj.t1_ms, hpsj.baseline_ms / hpsj.t4_ms,
              hpsj.baseline_ms / hpsj.t8_ms);
  return 0;
}
