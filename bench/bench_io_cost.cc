// Reproduces the Section 6.2 I/O claim: "For most queries, DP spends
// over five times of I/O cost than what DPS spends." Reports buffer-pool
// page accesses (hits + misses) and cold page reads per engine over the
// Q1-Q5 suites.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/datasets.h"
#include "workload/patterns.h"

int main() {
  using namespace fgpm;
  double scale = workload::BenchScaleFromEnv();
  bench::PrintHeader(
      "Section 6.2 — I/O cost of DP vs DPS (Q1-Q5 suites)",
      "buffer-pool page accesses; paper: DP does >5x the I/O of DPS",
      scale);

  auto specs = workload::PaperDatasets();
  Graph g = workload::LoadDataset(specs.back(), scale);
  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }

  auto patterns = workload::XmarkGraphPatterns4();
  auto q5 = workload::XmarkGraphPatterns5();
  patterns.insert(patterns.end(), q5.begin(), q5.end());

  std::printf("%-4s %10s | %14s %14s %8s\n", "Q", "matches", "DP(pages)",
              "DPS(pages)", "ratio");
  uint64_t dp_total = 0, dps_total = 0;
  int qi = 1;
  for (const auto& p : patterns) {
    auto dp = bench::RunEngine(**matcher, p, Engine::kDp);
    auto dps = bench::RunEngine(**matcher, p, Engine::kDps);
    dp_total += dp.pages;
    dps_total += dps.pages;
    std::printf("Q%-3d %10zu | %14llu %14llu %8.2f\n", qi++, dps.rows,
                (unsigned long long)dp.pages, (unsigned long long)dps.pages,
                dps.pages ? double(dp.pages) / double(dps.pages) : 0.0);
  }
  std::printf("---\ntotal DP %llu pages, DPS %llu pages, ratio %.2f\n",
              (unsigned long long)dp_total, (unsigned long long)dps_total,
              dps_total ? double(dp_total) / double(dps_total) : 0.0);
  return 0;
}
