// Reproduces Figure 5(b): TSD vs INT-DP vs DP elapsed time on the nine
// tree patterns T1-T9 over the same small XMark-derived DAG as Figure
// 5(a). Expected shape: DP < INT-DP << TSD.
#include <cstdio>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "workload/patterns.h"

int main() {
  using namespace fgpm;
  gen::XMarkOptions opts;
  opts.factor = 0.01;
  opts.acyclic = true;
  Graph g = gen::XMarkLike(opts);

  bench::PrintHeader(
      "Figure 5(b) — TSD vs INT-DP vs DP, 9 tree patterns",
      "elapsed ms per engine; paper shape: DP < INT-DP << TSD (log scale)",
      1.0);
  std::printf("dataset: %zu nodes, %zu edges (DAG)\n\n", g.NumNodes(),
              g.NumEdges());

  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }

  std::printf("%-4s %10s | %12s %12s %12s\n", "T", "matches", "TSD(ms)",
              "INT-DP(ms)", "DP(ms)");
  auto patterns = workload::XmarkTreePatterns();
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto tsd = bench::RunEngine(**matcher, patterns[i], Engine::kTsd);
    auto intdp = bench::RunEngine(**matcher, patterns[i], Engine::kIntDp);
    auto dp = bench::RunEngine(**matcher, patterns[i], Engine::kDp);
    std::printf("T%-3zu %10zu | %12.2f %12.2f %12.2f\n", i + 1, dp.rows,
                tsd.ms, intdp.ms, dp.ms);
  }
  return 0;
}
