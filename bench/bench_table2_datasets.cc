// Reproduces Table 2: dataset statistics for the five XMark-derived
// graphs — |V|, |E|, 2-hop cover size |H| and the ratio |H|/|V|.
// Paper values for reference (factor 0.2 .. 1.0):
//   |V| 336,244 .. 1,666,315   |E|/|V| ~ 1.18   |H|/|V| ~ 3.47-3.50
#include <cstdio>

#include "bench/bench_util.h"
#include "gdb/database.h"
#include "workload/datasets.h"

int main() {
  using namespace fgpm;
  double scale = workload::BenchScaleFromEnv();
  bench::PrintHeader("Table 2 — Datasets Statistics",
                     "columns: dataset |V| |E| |H| |H|/|V| (paper: "
                     "|E|/|V|~1.18, |H|/|V|~3.5)",
                     scale);

  std::printf("%-8s %12s %12s %14s %10s %10s\n", "dataset", "|V|", "|E|",
              "|H|", "|E|/|V|", "|H|/|V|");
  for (const auto& spec : workload::PaperDatasets()) {
    Graph g = workload::LoadDataset(spec, scale);
    GraphDatabase db;
    Status s = db.Build(g);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    uint64_t h = db.labeling().CoverSize();
    std::printf("%-8s %12zu %12zu %14llu %10.3f %10.3f\n", spec.name.c_str(),
                g.NumNodes(), g.NumEdges(), (unsigned long long)h,
                double(g.NumEdges()) / double(g.NumNodes()),
                double(h) / double(g.NumNodes()));
  }
  return 0;
}
