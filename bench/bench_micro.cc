// Micro-benchmarks (google-benchmark): operator- and structure-level
// costs underlying the end-to-end numbers — B+-tree probes, graph-code
// retrieval (cached/uncached), W-table lookups, cluster fetches, 2-hop
// construction, reachability tests and pattern parsing.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gdb/database.h"
#include "graph/generators.h"
#include "query/pattern.h"
#include "reach/two_hop.h"
#include "storage/bptree.h"

namespace fgpm {
namespace {

void BM_BPTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    DiskManager disk;
    BufferPool pool(&disk, 8 << 20);
    BPTree tree(&pool);
    Rng rng(1);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(tree.Insert(rng.Next(), i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPTreeInsert)->Arg(10000);

void BM_BPTreeLookup(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 8 << 20);
  BPTree tree(&pool);
  for (uint64_t k = 0; k < 100000; ++k) {
    Status s = tree.Insert(k * 7, k);
    (void)s;
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(rng.NextBounded(100000) * 7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPTreeLookup);

void BM_TwoHopBuild(benchmark::State& state) {
  Graph g = gen::ErdosRenyi(static_cast<uint32_t>(state.range(0)),
                            state.range(0) * 3, 8, 42);
  for (auto _ : state) {
    TwoHopLabeling lab = BuildTwoHopPruned(g);
    benchmark::DoNotOptimize(lab.CoverSize());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoHopBuild)->Arg(1000)->Arg(10000);

void BM_TwoHopReachQuery(benchmark::State& state) {
  Graph g = gen::ErdosRenyi(20000, 60000, 8, 43);
  TwoHopLabeling lab = BuildTwoHopPruned(g);
  Rng rng(3);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    benchmark::DoNotOptimize(lab.Reaches(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoHopReachQuery);

struct DbEnv {
  Graph g;
  GraphDatabase db;
  DbEnv() : g(gen::XMarkLike({.factor = 0.005, .seed = 1, .acyclic = false})) {
    Status s = db.Build(g);
    (void)s;
  }
};
DbEnv& Env() {
  static DbEnv* env = new DbEnv();
  return *env;
}

void BM_GetCodesCold(benchmark::State& state) {
  DbEnv& env = Env();
  env.db.set_code_cache_enabled(false);
  Rng rng(5);
  GraphCodeRecord rec;
  for (auto _ : state) {
    NodeId v = static_cast<NodeId>(rng.NextBounded(env.g.NumNodes()));
    benchmark::DoNotOptimize(env.db.GetCodes(v, env.g.label_of(v), &rec));
  }
  env.db.set_code_cache_enabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetCodesCold);

void BM_GetCodesCached(benchmark::State& state) {
  DbEnv& env = Env();
  env.db.set_code_cache_enabled(true);
  Rng rng(6);
  GraphCodeRecord rec;
  // Narrow working set: high hit rate.
  for (auto _ : state) {
    NodeId v = static_cast<NodeId>(rng.NextBounded(256));
    benchmark::DoNotOptimize(env.db.GetCodes(v, env.g.label_of(v), &rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetCodesCached);

void BM_WTableLookup(benchmark::State& state) {
  DbEnv& env = Env();
  Rng rng(7);
  std::vector<CenterId> centers;
  uint32_t nl = env.db.num_labels();
  for (auto _ : state) {
    LabelId x = static_cast<LabelId>(rng.NextBounded(nl));
    LabelId y = static_cast<LabelId>(rng.NextBounded(nl));
    benchmark::DoNotOptimize(env.db.wtable().Lookup(x, y, &centers));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WTableLookup);

void BM_ClusterFetch(benchmark::State& state) {
  DbEnv& env = Env();
  // Probe T-subclusters of centers listed under (region -> item).
  auto rx = env.g.FindLabel("region");
  auto ry = env.g.FindLabel("item");
  std::vector<CenterId> centers;
  Status s = env.db.wtable().Lookup(*rx, *ry, &centers);
  (void)s;
  if (centers.empty()) {
    state.SkipWithError("no centers for region->item");
    return;
  }
  Rng rng(8);
  std::vector<NodeId> cluster;
  for (auto _ : state) {
    CenterId w = centers[rng.NextBounded(centers.size())];
    benchmark::DoNotOptimize(env.db.rjoin_index().GetT(w, *ry, &cluster));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterFetch);

void BM_PatternParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Pattern::Parse("site->region; region->item; item->incategory; "
                       "incategory->category"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternParse);

}  // namespace
}  // namespace fgpm

BENCHMARK_MAIN();
