// Semantic result cache + batched multi-query execution A/B (PR 7
// tentpole): a skewed (Zipfian) multi-client workload over one shared
// database, answered two ways:
//   off — every query is a solo GraphMatcher::Match with the result
//         cache disabled (the pre-PR serving path: plan cache only);
//   on  — queries arrive in batches of `batch` concurrent clients and
//         run through GraphMatcher::MatchBatch with the result cache
//         enabled (canonical dedup -> exact/containment cache probes ->
//         shared-seed execution of the residue).
// Both passes see the identical query sequence; every returned result
// is compared row-for-row against a reference answer computed once per
// pattern text by a cache-less matcher (FGPM_CHECK aborts on any
// mismatch, so a reported speedup always comes with row identity).
//
// The pool mixes hot patterns, alternative spellings of the same
// pattern (canonical-key collisions), specifics contained in more
// general pool members (containment replay), and cold tails — the
// shape ROADMAP item 4 predicts for skewed multi-user workloads.
//
// Results go to BENCH_multiquery.json; `make bench-multiquery` runs it.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"

namespace fgpm {
namespace {

// Hot-to-cold pattern pool (Zipf rank = index). Spellings and contained
// specifics are deliberately interleaved near the top so the cache sees
// exact hits, canonical collisions AND containment replays while hot.
const std::vector<std::string> kPool = {
    "L0->L1; L1->L2",          // 0: hot chain
    "L1->L2; L0->L1",          // 1: spelling of 0 (exact canonical hit)
    "L0->L1; L1->L2; L0->L2",  // 2: chord, contained in 0 (zero residual)
    "L0->L1; L0->L2",          // 3: star
    "L1->L2; L1->L3",          // 4: star at L1
    "L1->L2; L2->L3",          // 5: chain contained in 4 (residual L2->L3)
    "L0->L2; L0->L1",          // 6: spelling of 3
    "L2->L3; L3->L4",          // 7
    "L0->L1; L1->L3; L3->L4",  // 8: 3-edge chain
    "L2->L4; L4->L5",          // 9
    "L0->L3; L3->L5",          // 10
    "L3->L4; L2->L3",          // 11: spelling of 7
    "L1->L4; L2->L4",          // 12
    "L0->L1; L1->L2; L2->L3",  // 13
    "L4->L5; L2->L4",          // 14: spelling of 9
    "L0->L5",                  // 15: single-edge cold tail
};

struct Cell {
  unsigned threads = 0;
  double off_ms = 0;
  double on_ms = 0;
  uint64_t cache_exact = 0;
  uint64_t cache_replay = 0;
  uint64_t shared_seed_groups = 0;
  uint64_t shared_seed_reuses = 0;
  uint64_t unique_queries = 0;
  double off_qps(uint64_t q) const { return off_ms > 0 ? q * 1e3 / off_ms : 0; }
  double on_qps(uint64_t q) const { return on_ms > 0 ? q * 1e3 / on_ms : 0; }
  double speedup() const { return on_ms > 0 ? off_ms / on_ms : 0; }
};

}  // namespace
}  // namespace fgpm

int main(int argc, char** argv) {
  using namespace fgpm;
  uint32_t nodes = 5000;
  int rounds = 16, batch = 64, reps = 3;
  double theta = 0.99;  // YCSB-standard skew
  uint64_t seed = 0xbeef;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) nodes = std::stoul(arg.substr(8));
    if (arg.rfind("--rounds=", 0) == 0) rounds = std::stoi(arg.substr(9));
    if (arg.rfind("--batch=", 0) == 0) batch = std::stoi(arg.substr(8));
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
    if (arg.rfind("--theta=", 0) == 0) theta = std::stod(arg.substr(8));
    if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
  }
  const uint64_t total_queries = uint64_t(rounds) * batch;

  bench::PrintHeader(
      "Multi-query A/B — result cache + batching vs solo execution",
      "Zipfian client mix over one graph; identical rows required per "
      "query; aggregate throughput off vs on per thread count",
      1.0);
  std::printf("%u-node scale-free graph, %d rounds x %d clients, "
              "zipf theta %.2f, pool %zu patterns\n\n",
              nodes, rounds, batch, theta, kPool.size());

  Graph g = gen::ScaleFree(nodes, 2, 6, seed);

  // One Zipf-sampled arrival sequence, shared by both passes. The
  // contained specifics (2, 5) phase in after the first round — drill-
  // down refinements follow the overview queries they refine — so their
  // first arrival finds the general's rows cached and exercises
  // containment replay instead of executing fresh.
  Rng rng(seed + 1);
  ZipfDistribution zipf(kPool.size(), theta);
  std::vector<std::vector<size_t>> arrivals(rounds);
  for (int ri = 0; ri < rounds; ++ri) {
    auto& round = arrivals[ri];
    round.resize(batch);
    for (size_t& q : round) {
      q = zipf.Sample(&rng);
      if (ri == 0 && (q == 2 || q == 5)) q = q == 2 ? 0 : 4;
    }
  }

  // Reference answers, one per pool entry, from a cache-less matcher.
  // Column order is per-spelling parse order, so comparing per-text is
  // an exact row-identity check.
  auto ref_m = GraphMatcher::Create(&g, {}, ExecOptions{.num_threads = 8});
  FGPM_CHECK(ref_m.ok());
  std::vector<std::vector<std::vector<NodeId>>> reference(kPool.size());
  for (size_t i = 0; i < kPool.size(); ++i) {
    auto r = (*ref_m)->Match(kPool[i]);
    FGPM_CHECK(r.ok());
    r->SortRows();
    reference[i] = std::move(r->rows);
  }

  std::vector<Cell> cells;
  for (unsigned threads : {1u, 4u, 8u}) {
    Cell cell;
    cell.threads = threads;

    // Each pass repeats `reps` times from a fresh matcher (cold caches
    // every repetition, identical work) and keeps the fastest total:
    // best-of-N measures the workload, not whatever else the scheduler
    // ran on a loaded box. Verification stays outside the timers.

    // OFF: solo Match per arrival, result cache disabled.
    cell.off_ms = bench::BestOfMs(reps, [&](int) {
      auto m = GraphMatcher::Create(&g, {}, ExecOptions{.num_threads = threads});
      FGPM_CHECK(m.ok());
      double pass_ms = 0;
      for (const auto& round : arrivals) {
        std::vector<MatchResult> results;
        results.reserve(round.size());
        WallTimer t;
        for (size_t q : round) {
          auto r = (*m)->Match(kPool[q]);
          FGPM_CHECK(r.ok());
          results.push_back(std::move(*r));
        }
        pass_ms += t.ElapsedMillis();
        for (size_t i = 0; i < round.size(); ++i) {
          results[i].SortRows();
          FGPM_CHECK(results[i].rows == reference[round[i]]);
        }
      }
      return pass_ms;
    });

    // ON: MatchBatch per round, result cache enabled. Cache counters
    // come from the first repetition only (every repetition replays the
    // identical sequence, so they would just multiply by reps).
    cell.on_ms = bench::BestOfMs(reps, [&](int rep) {
      ExecOptions eo;
      eo.num_threads = threads;
      eo.use_result_cache = true;
      auto m = GraphMatcher::Create(&g, {}, eo);
      FGPM_CHECK(m.ok());
      double pass_ms = 0;
      for (const auto& round : arrivals) {
        std::vector<std::string> texts;
        texts.reserve(round.size());
        for (size_t q : round) texts.push_back(kPool[q]);
        BatchStats bs;
        WallTimer t;
        auto results = (*m)->MatchBatch(texts, {}, &bs);
        FGPM_CHECK(results.ok());
        pass_ms += t.ElapsedMillis();
        if (rep == 0) {
          cell.cache_exact += bs.cache_exact;
          cell.cache_replay += bs.cache_replay;
          cell.shared_seed_groups += bs.shared_seed_groups;
          cell.shared_seed_reuses += bs.shared_seed_reuses;
          cell.unique_queries += bs.unique_queries;
        }
        for (size_t i = 0; i < round.size(); ++i) {
          (*results)[i].SortRows();
          FGPM_CHECK((*results)[i].rows == reference[round[i]]);
        }
      }
      return pass_ms;
    });

    std::printf(
        "  %u thread%s: off %8.1f ms (%7.0f q/s), on %8.1f ms (%7.0f q/s)"
        "  %5.2fx  [exact %llu, replay %llu, seed-reuse %llu, unique %llu]\n",
        threads, threads == 1 ? " " : "s", cell.off_ms,
        cell.off_qps(total_queries), cell.on_ms, cell.on_qps(total_queries),
        cell.speedup(), (unsigned long long)cell.cache_exact,
        (unsigned long long)cell.cache_replay,
        (unsigned long long)cell.shared_seed_reuses,
        (unsigned long long)cell.unique_queries);
    std::fflush(stdout);
    cells.push_back(cell);
  }

  const double speedup_8t = cells.back().speedup();
  std::printf("\naggregate throughput speedup at 8 threads: %.2fx "
              "(gate: >= 3x)\n", speedup_8t);

  FILE* f = std::fopen("BENCH_multiquery.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"multiquery\",\n  \"nodes\": %u,\n"
               "  \"rounds\": %d,\n  \"batch\": %d,\n  \"theta\": %.2f,\n"
               "  \"queries\": %llu,\n  \"identical_rows\": true,\n"
               "  \"speedup_8t\": %.3f,\n  \"cells\": [\n",
               nodes, rounds, batch, theta,
               (unsigned long long)total_queries, speedup_8t);
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"threads\": %u, \"off_ms\": %.2f, \"on_ms\": %.2f, "
        "\"off_qps\": %.1f, \"on_qps\": %.1f, \"speedup\": %.3f,\n"
        "     \"cache_exact\": %llu, \"cache_replay\": %llu, "
        "\"shared_seed_groups\": %llu, \"shared_seed_reuses\": %llu, "
        "\"unique_queries\": %llu}%s\n",
        c.threads, c.off_ms, c.on_ms, c.off_qps(total_queries),
        c.on_qps(total_queries), c.speedup(),
        (unsigned long long)c.cache_exact, (unsigned long long)c.cache_replay,
        (unsigned long long)c.shared_seed_groups,
        (unsigned long long)c.shared_seed_reuses,
        (unsigned long long)c.unique_queries,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_multiquery.json\n");
  return 0;
}
