// Shared helpers for the reproduction benches. Each bench binary prints
// a self-describing table matching one table/figure of the paper (see
// DESIGN.md per-experiment index and EXPERIMENTS.md for results).
#ifndef FGPM_BENCH_BENCH_UTIL_H_
#define FGPM_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "common/timer.h"
#include "core/graph_matcher.h"
#include "workload/datasets.h"

namespace fgpm::bench {

inline void PrintHeader(const char* experiment, const char* description,
                        double scale) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("dataset scale: %.3f of the paper's sizes "
              "(set FGPM_BENCH_SCALE=1.0 for full size)\n", scale);
  std::printf("==============================================================\n");
}

// Runs a pattern on an engine; returns elapsed ms (negative on error)
// and fills counters.
struct RunResult {
  double ms = -1;
  size_t rows = 0;
  uint64_t pages = 0;  // buffer-pool accesses (hits + misses)
};

inline RunResult RunEngine(GraphMatcher& matcher, const Pattern& p,
                           Engine engine) {
  RunResult out;
  WallTimer t;
  auto r = matcher.Match(p, {.engine = engine});
  if (!r.ok()) {
    std::fprintf(stderr, "  [%s failed: %s]\n", EngineName(engine),
                 r.status().ToString().c_str());
    return out;
  }
  out.ms = t.ElapsedMillis();
  out.rows = r->rows.size();
  out.pages = r->stats.modeled_io_pages;
  return out;
}

}  // namespace fgpm::bench

#endif  // FGPM_BENCH_BENCH_UTIL_H_
