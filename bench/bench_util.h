// Shared helpers for the reproduction benches. Each bench binary prints
// a self-describing table matching one table/figure of the paper (see
// DESIGN.md per-experiment index and EXPERIMENTS.md for results).
#ifndef FGPM_BENCH_BENCH_UTIL_H_
#define FGPM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>

#include "common/hash.h"
#include "common/timer.h"
#include "core/graph_matcher.h"
#include "workload/datasets.h"

namespace fgpm::bench {

// Best-of-N wall-clock: runs `pass(rep)` N times and keeps the fastest
// elapsed milliseconds — measuring the workload, not whatever else the
// scheduler ran on a loaded box. The callback returns one repetition's
// measured ms; first-rep-only side effects (stats counters, reference
// rows) belong in the caller's closure keyed on rep == 0, and result
// verification stays outside the timed region.
template <typename Fn>
double BestOfMs(int reps, Fn&& pass) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) best = std::min(best, pass(rep));
  return best;
}

// Order-independent row fingerprint (common/hash.h RowSetChecksum, the
// same algorithm the wire protocol's checksum-only responses use) —
// lets benches assert row identity without holding both row sets.
using fgpm::RowSetChecksum;

inline void PrintHeader(const char* experiment, const char* description,
                        double scale) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("dataset scale: %.3f of the paper's sizes "
              "(set FGPM_BENCH_SCALE=1.0 for full size)\n", scale);
  std::printf("==============================================================\n");
}

// Runs a pattern on an engine; returns elapsed ms (negative on error)
// and fills counters.
struct RunResult {
  double ms = -1;
  size_t rows = 0;
  uint64_t pages = 0;  // buffer-pool accesses (hits + misses)
};

inline RunResult RunEngine(GraphMatcher& matcher, const Pattern& p,
                           Engine engine) {
  RunResult out;
  WallTimer t;
  auto r = matcher.Match(p, {.engine = engine});
  if (!r.ok()) {
    std::fprintf(stderr, "  [%s failed: %s]\n", EngineName(engine),
                 r.status().ToString().c_str());
    return out;
  }
  out.ms = t.ElapsedMillis();
  out.rows = r->rows.size();
  out.pages = r->stats.modeled_io_pages;
  return out;
}

}  // namespace fgpm::bench

#endif  // FGPM_BENCH_BENCH_UTIL_H_
