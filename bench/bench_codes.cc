// Code-layout / intersection-kernel A/B benchmark (ISSUE 3):
//
//  * probe — raw Reaches probes against one labeling under four
//    representations: the pre-PR nested vector-of-vectors layout with
//    the seed merge kernel, the flat arena with the seed kernel
//    (layout effect), the flat arena with the dispatched SIMD kernels
//    (kernel effect), and the hybrid arena + chunked-bitmap sidecars
//    (hub effect). Two probe mixes: leaf-heavy (uniform pairs, short
//    codes) and hub-heavy (pairs from the top code-length decile, the
//    regime the bitmap containers exist for). A deep grid DAG keeps hub
//    codes long — grid reachability is the classic worst case for 2-hop
//    label sizes.
//  * e2e — the Figure-6 DPS pattern suite on an XMark-like graph,
//    baseline (seed kernel, no reachability memo, no bitmaps — the
//    pre-PR execution behavior) vs optimized (dispatched kernels,
//    per-worker memos, default bitmap threshold). Row sets are checked
//    identical; only time may differ.
//
// Results go to BENCH_codes.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/intersect_kernels.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sorted_vector.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "reach/two_hop.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

// n x n grid DAG: (i, j) -> (i+1, j) and (i, j+1). Long 2-hop codes in
// the middle of the grid; every node is its own center.
Graph GridDag(uint32_t n) {
  Graph g;
  std::vector<NodeId> id(static_cast<size_t>(n) * n);
  const char* labels[] = {"A", "B", "C"};
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      id[i * n + j] = g.AddNode(labels[(i + j) % 3]);
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i + 1 < n) FGPM_CHECK(g.AddEdge(id[i * n + j], id[(i + 1) * n + j]).ok());
      if (j + 1 < n) FGPM_CHECK(g.AddEdge(id[i * n + j], id[i * n + j + 1]).ok());
    }
  }
  g.Finalize();
  return g;
}

struct ProbeCell {
  std::string mix;     // leaf | hub
  std::string layout;  // nested-seed | flat-seed | flat-simd | hybrid
  double ns_per_probe = 0;
  double speedup_vs_nested = 0;
  uint64_t reachable = 0;  // probe checksum: identical across layouts
};

// The pre-PR representation: per-center heap-allocated code vectors,
// probed with the seed merge kernel. Reconstructed from the labeling so
// every layout answers the same cover.
struct NestedCodes {
  std::vector<std::vector<CenterId>> in, out;
  std::vector<CenterId> scc_of;

  explicit NestedCodes(const TwoHopLabeling& lab, const Graph& g) {
    uint32_t nc = lab.num_centers();
    in.resize(nc);
    out.resize(nc);
    for (CenterId c = 0; c < nc; ++c) {
      auto ic = lab.CenterInCode(c), oc = lab.CenterOutCode(c);
      in[c].assign(ic.begin(), ic.end());
      out[c].assign(oc.begin(), oc.end());
    }
    scc_of.resize(g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) scc_of[v] = lab.CenterOf(v);
  }

  bool Reaches(NodeId u, NodeId v) const {
    if (u == v) return true;
    CenterId cu = scc_of[u], cv = scc_of[v];
    if (cu == cv) return true;
    return SortedIntersects(out[cu], in[cv]);
  }

  uint64_t Bytes() const {
    uint64_t b = scc_of.size() * sizeof(CenterId);
    for (const auto& v : in) b += sizeof(v) + v.size() * sizeof(CenterId);
    for (const auto& v : out) b += sizeof(v) + v.size() * sizeof(CenterId);
    return b;
  }
};

// Measures one probe loop: `rounds` passes over `pairs`, best pass wins
// (steady-state cost, robust to scheduler noise on a busy host).
template <typename Fn>
std::pair<double, uint64_t> TimeProbes(
    const std::vector<std::pair<NodeId, NodeId>>& pairs, int rounds,
    Fn&& probe) {
  double best_ms = 1e300;
  uint64_t reachable = 0;
  for (int r = 0; r < rounds; ++r) {
    uint64_t count = 0;
    WallTimer t;
    for (const auto& [u, v] : pairs) count += probe(u, v) ? 1 : 0;
    best_ms = std::min(best_ms, t.ElapsedMillis());
    reachable = count;
  }
  return {best_ms * 1e6 / static_cast<double>(pairs.size()), reachable};
}

struct E2eCell {
  std::string config;  // baseline | optimized
  double total_ms = 0;
  uint64_t total_rows = 0;
  uint64_t memo_probes = 0;
  uint64_t memo_hits = 0;
};

}  // namespace
}  // namespace fgpm

int main(int argc, char** argv) {
  using namespace fgpm;
  uint32_t grid_n = 64;
  int rounds = 5;
  double xmark_factor = 0.05;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--grid=", 0) == 0) grid_n = std::stoul(arg.substr(7));
    if (arg.rfind("--rounds=", 0) == 0) rounds = std::stoi(arg.substr(9));
    if (arg.rfind("--factor=", 0) == 0) xmark_factor = std::stod(arg.substr(9));
  }

  // --- probe microbench ------------------------------------------------
  Graph g = GridDag(grid_n);
  std::printf("grid %ux%u: %zu nodes, %zu edges\n", grid_n, grid_n,
              g.NumNodes(), g.NumEdges());
  TwoHopLabeling lab = BuildTwoHopPruned(g, 1, 0);  // start flat
  const uint64_t cover = lab.CoverSize();

  // Code-length profile drives the probe mixes.
  std::vector<uint32_t> out_len(g.NumNodes()), in_len(g.NumNodes());
  std::vector<uint32_t> all_len;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    out_len[v] = static_cast<uint32_t>(lab.OutCode(v).size());
    in_len[v] = static_cast<uint32_t>(lab.InCode(v).size());
    all_len.push_back(out_len[v]);
    all_len.push_back(in_len[v]);
  }
  std::sort(all_len.begin(), all_len.end());
  const uint32_t p50 = all_len[all_len.size() / 2];
  const uint32_t p90 = all_len[all_len.size() * 9 / 10];
  const uint32_t p99 = all_len[all_len.size() * 99 / 100];
  std::printf("cover %llu entries; code length p50=%u p90=%u p99=%u max=%u\n",
              (unsigned long long)cover, p50, p90, p99, all_len.back());

  constexpr size_t kPairs = 200000;
  Rng rng(0xc0de);
  std::vector<std::pair<NodeId, NodeId>> leaf_pairs, hub_pairs;
  // Top decile by code length, per direction (the pruned center order
  // can skew entries toward one direction, so thresholds are separate).
  std::vector<uint32_t> sorted_out = out_len, sorted_in = in_len;
  std::sort(sorted_out.begin(), sorted_out.end());
  std::sort(sorted_in.begin(), sorted_in.end());
  const uint32_t p90_out = sorted_out[sorted_out.size() * 9 / 10];
  const uint32_t p90_in = sorted_in[sorted_in.size() * 9 / 10];
  std::vector<NodeId> hub_out, hub_in;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (out_len[v] >= p90_out) hub_out.push_back(v);
    if (in_len[v] >= p90_in) hub_in.push_back(v);
  }
  FGPM_CHECK(!hub_out.empty() && !hub_in.empty());
  for (size_t i = 0; i < kPairs; ++i) {
    leaf_pairs.emplace_back(
        static_cast<NodeId>(rng.NextBounded(g.NumNodes())),
        static_cast<NodeId>(rng.NextBounded(g.NumNodes())));
    hub_pairs.emplace_back(hub_out[rng.NextBounded(hub_out.size())],
                           hub_in[rng.NextBounded(hub_in.size())]);
  }

  NestedCodes nested(lab, g);
  const uint64_t nested_bytes = nested.Bytes();
  const uint64_t flat_bytes = lab.CodeBytes();
  lab.SetBitmapThreshold(kDefaultCodeBitmapThreshold);
  const uint64_t hybrid_bytes = lab.CodeBytes();
  const uint32_t hybrid_sidecars = lab.NumBitmapCodes();
  lab.SetBitmapThreshold(0);
  std::printf(
      "bytes/entry: nested %.2f, flat %.2f, hybrid %.2f (%u sidecars)\n",
      double(nested_bytes) / double(cover), double(flat_bytes) / double(cover),
      double(hybrid_bytes) / double(cover), hybrid_sidecars);

  std::vector<ProbeCell> cells;
  struct Mix {
    const char* name;
    const std::vector<std::pair<NodeId, NodeId>>* pairs;
  };
  const Mix mixes[] = {{"leaf", &leaf_pairs}, {"hub", &hub_pairs}};
  for (const Mix& mix : mixes) {
    double nested_ns = 0;
    auto add = [&](const char* layout, double ns, uint64_t reach) {
      ProbeCell c;
      c.mix = mix.name;
      c.layout = layout;
      c.ns_per_probe = ns;
      c.speedup_vs_nested = nested_ns > 0 ? nested_ns / ns : 1.0;
      c.reachable = reach;
      if (!cells.empty() && cells.back().mix == mix.name) {
        FGPM_CHECK(cells.back().reachable == reach);  // identical verdicts
      }
      std::printf("probe %-4s %-11s %8.1f ns/probe  %5.2fx\n", c.mix.c_str(),
                  layout, ns, c.speedup_vs_nested);
      std::fflush(stdout);
      cells.push_back(c);
    };

    FGPM_CHECK(SetIntersectKernel(IntersectKernel::kSeed));
    auto [ns0, r0] = TimeProbes(*mix.pairs, rounds, [&](NodeId u, NodeId v) {
      return nested.Reaches(u, v);
    });
    nested_ns = ns0;
    add("nested-seed", ns0, r0);

    lab.SetBitmapThreshold(0);
    auto [ns1, r1] = TimeProbes(*mix.pairs, rounds, [&](NodeId u, NodeId v) {
      return lab.Reaches(u, v);
    });
    add("flat-seed", ns1, r1);

    FGPM_CHECK(SetIntersectKernel(IntersectKernel::kAuto));
    auto [ns2, r2] = TimeProbes(*mix.pairs, rounds, [&](NodeId u, NodeId v) {
      return lab.Reaches(u, v);
    });
    add("flat-simd", ns2, r2);

    lab.SetBitmapThreshold(kDefaultCodeBitmapThreshold);
    auto [ns3, r3] = TimeProbes(*mix.pairs, rounds, [&](NodeId u, NodeId v) {
      return lab.Reaches(u, v);
    });
    add("hybrid", ns3, r3);
    lab.SetBitmapThreshold(0);
  }

  auto cell_of = [&](const char* mix, const char* layout) -> const ProbeCell& {
    for (const ProbeCell& c : cells) {
      if (c.mix == mix && c.layout == layout) return c;
    }
    FGPM_CHECK(false);
    return cells[0];
  };
  const double hub_speedup = cell_of("hub", "hybrid").speedup_vs_nested;
  const double leaf_speedup =
      std::max(cell_of("leaf", "hybrid").speedup_vs_nested,
               cell_of("leaf", "flat-simd").speedup_vs_nested);

  // --- end-to-end: Figure-6 DPS suite, baseline vs optimized -----------
  gen::XMarkOptions xopts;
  xopts.factor = xmark_factor;
  Graph xg = gen::XMarkLike(xopts);
  std::printf("\nxmark factor %.3f: %zu nodes, %zu edges\n", xmark_factor,
              xg.NumNodes(), xg.NumEdges());
  std::vector<Pattern> patterns = workload::XmarkGraphPatterns4();
  for (const auto& p : workload::XmarkGraphPatterns5()) patterns.push_back(p);

  auto run_config = [&](const char* name, bool optimized) {
    GraphDatabaseOptions opts;
    if (!optimized) {
      opts.code_bitmap_threshold = 0;
      opts.reach_cache_entries = 0;
    }
    FGPM_CHECK(SetIntersectKernel(optimized ? IntersectKernel::kAuto
                                            : IntersectKernel::kSeed));
    auto matcher = GraphMatcher::Create(&xg, opts);
    FGPM_CHECK(matcher.ok());
    E2eCell cell;
    cell.config = name;
    std::vector<std::vector<std::vector<NodeId>>> rows_per_query;
    for (const Pattern& p : patterns) {
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        auto r = (*matcher)->Match(p, {.engine = Engine::kDps});
        FGPM_CHECK(r.ok());
        best = std::min(best, r->stats.elapsed_ms);
        cell.memo_probes += r->stats.operators.reach_memo_probes;
        cell.memo_hits += r->stats.operators.reach_memo_hits;
        if (rep == 0) {
          r->SortRows();
          cell.total_rows += r->rows.size();
          rows_per_query.push_back(std::move(r->rows));
        }
      }
      cell.total_ms += best;
    }
    SetIntersectKernel(IntersectKernel::kAuto);
    std::printf("e2e %-9s: %8.2f ms over %zu queries, %llu rows "
                "(memo %llu/%llu hits)\n",
                name, cell.total_ms, patterns.size(),
                (unsigned long long)cell.total_rows,
                (unsigned long long)cell.memo_hits,
                (unsigned long long)cell.memo_probes);
    return std::make_pair(cell, rows_per_query);
  };

  auto [base_cell, base_rows] = run_config("baseline", false);
  auto [opt_cell, opt_rows] = run_config("optimized", true);
  FGPM_CHECK(base_rows == opt_rows);  // identical query results
  const double e2e_speedup =
      opt_cell.total_ms > 0 ? base_cell.total_ms / opt_cell.total_ms : 0.0;
  std::printf("\nhub-probe hybrid vs nested: %.2fx; leaf best: %.2fx; "
              "e2e DPS baseline/optimized: %.2fx\n",
              hub_speedup, leaf_speedup, e2e_speedup);

  FILE* f = std::fopen("BENCH_codes.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"codes\",\n  \"grid_n\": %u,\n"
               "  \"cover_entries\": %llu,\n"
               "  \"code_len_p50\": %u, \"code_len_p90\": %u, "
               "\"code_len_p99\": %u, \"code_len_max\": %u,\n"
               "  \"bytes_per_entry\": {\"nested\": %.3f, \"flat\": %.3f, "
               "\"hybrid\": %.3f},\n  \"hybrid_sidecars\": %u,\n",
               grid_n, (unsigned long long)cover, p50, p90, p99,
               all_len.back(), double(nested_bytes) / double(cover),
               double(flat_bytes) / double(cover),
               double(hybrid_bytes) / double(cover), hybrid_sidecars);
  std::fprintf(f, "  \"probe_cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const ProbeCell& c = cells[i];
    std::fprintf(f,
                 "    {\"mix\": \"%s\", \"layout\": \"%s\", "
                 "\"ns_per_probe\": %.2f, \"speedup_vs_nested\": %.3f, "
                 "\"reachable\": %llu}%s\n",
                 c.mix.c_str(), c.layout.c_str(), c.ns_per_probe,
                 c.speedup_vs_nested, (unsigned long long)c.reachable,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"e2e\": {\"workload\": \"fig6_dps_xmark\", "
               "\"xmark_factor\": %.3f, \"queries\": %zu,\n"
               "    \"baseline_ms\": %.2f, \"optimized_ms\": %.2f, "
               "\"rows\": %llu, \"identical_rows\": true,\n"
               "    \"memo_probes\": %llu, \"memo_hits\": %llu},\n",
               xmark_factor, patterns.size(), base_cell.total_ms,
               opt_cell.total_ms, (unsigned long long)opt_cell.total_rows,
               (unsigned long long)opt_cell.memo_probes,
               (unsigned long long)opt_cell.memo_hits);
  std::fprintf(f,
               "  \"speedups\": {\"hub_probe_hybrid_vs_nested\": %.3f, "
               "\"leaf_probe_best_vs_nested\": %.3f, "
               "\"e2e_dps_optimized_vs_baseline\": %.3f}\n}\n",
               hub_speedup, leaf_speedup, e2e_speedup);
  std::fclose(f);
  std::printf("wrote BENCH_codes.json\n");
  return 0;
}
