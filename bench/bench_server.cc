// Open-loop latency benchmark for the async query server (PR 8
// tentpole): a Zipfian mix of single- and cross-shard patterns is
// offered to fgpm::net::Server at fixed arrival rates — requests are
// sent at their scheduled times whether or not earlier ones finished,
// so queueing delay is charged to latency (no coordinated omission) —
// and at 1/2/4/8 shards the bench reports:
//   - saturation throughput (pipelined burst, all connections),
//   - per-arrival-rate achieved throughput and p50/p95/p99 latency.
//
// The box has one core, so the 8-vs-1-shard speedup comes from where
// the paper's serving story says it must: every shard owns a private
// buffer pool + code path whose (simulated) disk reads overlap across
// worker threads, while a single shard serializes them. The total
// buffer budget is constant — N shards each get 1/N — so the sweep
// isolates partitioned serving, not extra cache.
//
// Before anything is timed, every pool pattern is answered once by the
// server (full rows) and compared row-for-row against a direct
// GraphMatcher::Match — a reported speedup always comes with row
// identity. Results go to BENCH_server.json; `make bench-server` runs
// it. Gate: >= 3x aggregate (saturation) throughput at 8 shards vs 1.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/scheduler.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"

namespace fgpm {
namespace {

using Clock = std::chrono::steady_clock;
using net::Client;
using net::QueryRequest;
using net::QueryResponse;
using net::Server;
using net::ServerOptions;

constexpr uint32_t kLabels = 32;  // 8 groups of 4 co-located labels
constexpr uint32_t kGroups = 8;

// Pool of pattern texts, hot-to-cold (Zipf rank = index). Ranks snake
// across the 8 label groups so the hottest patterns land on DIFFERENT
// shards — a skewed mix that still spreads: group g owns labels
// 4g..4g+3, and with N shards group g lives on shard g % N. The tail
// adds cross-group (scatter-gather) patterns.
std::vector<std::string> BuildPool() {
  auto L = [](uint32_t l) { return "L" + std::to_string(l); };
  std::vector<std::string> pool;
  // Three snake sweeps over the groups: 0..7, 7..0, 0..7.
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (uint32_t i = 0; i < kGroups; ++i) {
      uint32_t g = (sweep == 1) ? (kGroups - 1 - i) : i;
      uint32_t b = 4 * g;
      std::string p;
      switch (sweep) {
        case 0: p = L(b) + "->" + L(b + 1); break;
        case 1: p = L(b + 1) + "->" + L(b + 2) + "; " + L(b + 2) + "->" + L(b + 3); break;
        default: p = L(b) + "->" + L(b + 2) + "; " + L(b) + "->" + L(b + 3); break;
      }
      pool.push_back(p);
    }
  }
  // Cross-group tail: each edge crosses shard boundaries.
  pool.push_back(L(1) + "->" + L(5));
  pool.push_back(L(9) + "->" + L(13) + "; " + L(13) + "->" + L(17));
  pool.push_back(L(21) + "->" + L(25));
  pool.push_back(L(29) + "->" + L(2));
  return pool;
}

std::vector<uint32_t> GroupPlacement(uint32_t num_shards) {
  std::vector<uint32_t> placement(kLabels);
  for (uint32_t l = 0; l < kLabels; ++l) placement[l] = (l / 4) % num_shards;
  return placement;
}

struct RatePoint {
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  size_t sent = 0;
  size_t rejected = 0;  // admission-control sheds during overload
};

struct WorkerLoad {
  std::string tag;       // "srv<k>" for server workers, "int<i>" internal
  double busy_frac = 0;  // fraction of the run spent inside morsel bodies
  uint64_t tasks = 0;
  uint64_t steals = 0;
};

struct ShardRun {
  uint32_t shards = 0;
  double saturation_qps = 0;
  std::vector<RatePoint> points;
  std::vector<WorkerLoad> workers;  // scheduler busy fractions over the run
};

// Per-worker scheduler deltas over a measurement window — makes skew
// imbalance visible in the JSON (a hot shard shows up as one worker at
// ~100% busy while the rest idle or steal). Worker slots are
// append-only, so before/after indices line up.
std::vector<WorkerLoad> BusyDeltas(const Scheduler::Stats& before,
                                   const Scheduler::Stats& after,
                                   double window_ns) {
  std::vector<WorkerLoad> out;
  for (size_t i = 0; i < after.workers.size(); ++i) {
    const auto& w1 = after.workers[i];
    Scheduler::WorkerStats w0;
    if (i < before.workers.size()) w0 = before.workers[i];
    WorkerLoad l;
    l.tag = w1.tag.empty() ? ("int" + std::to_string(i)) : w1.tag;
    l.busy_frac = window_ns > 0 ? (w1.busy_ns - w0.busy_ns) / window_ns : 0;
    l.tasks = w1.tasks - w0.tasks;
    l.steals = w1.steals - w0.steals;
    out.push_back(std::move(l));
  }
  return out;
}

double Pct(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  size_t i = static_cast<size_t>(q * (v.size() - 1));
  std::nth_element(v.begin(), v.begin() + i, v.end());
  return v[i];
}

struct LoadConfig {
  const std::vector<std::string>* pool;
  double theta;
  uint64_t seed;
  size_t conns;
  uint16_t port;
};

// Pipelined burst: every connection fires `per_conn` Zipf-sampled
// checksum-only requests back-to-back, then drains. Returns aggregate
// completed requests/sec — the saturation throughput.
double SaturationBurst(const LoadConfig& cfg, size_t per_conn) {
  std::vector<std::unique_ptr<Client>> clients;
  for (size_t c = 0; c < cfg.conns; ++c) {
    auto cl = Client::Connect("127.0.0.1", cfg.port);
    FGPM_CHECK(cl.ok());
    clients.push_back(std::move(*cl));
  }
  std::atomic<bool> failed{false};
  auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < cfg.conns; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(cfg.seed + 17 * c);
      ZipfDistribution zipf(cfg.pool->size(), cfg.theta);
      for (size_t k = 0; k < per_conn; ++k) {
        QueryRequest req;
        req.id = k;
        req.flags = net::kFlagChecksumOnly;
        req.pattern = (*cfg.pool)[zipf.Sample(&rng)];
        if (!clients[c]->Send(req).ok()) { failed = true; return; }
      }
      QueryResponse resp;
      for (size_t k = 0; k < per_conn; ++k) {
        if (!clients[c]->Recv(&resp).ok() || !resp.ok()) { failed = true; return; }
      }
    });
  }
  for (auto& t : threads) t.join();
  FGPM_CHECK(!failed.load());
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return cfg.conns * per_conn / secs;
}

// Open loop at a fixed arrival rate: request k is sent at t0 + k/rate
// (round-robin over connections) regardless of completions; latency is
// measured from that SCHEDULED time, so server-side queueing during
// overload is fully charged.
RatePoint OpenLoop(const LoadConfig& cfg, double rate_qps, size_t total) {
  RatePoint pt;
  pt.offered_qps = rate_qps;
  pt.sent = total;
  std::vector<std::unique_ptr<Client>> clients;
  for (size_t c = 0; c < cfg.conns; ++c) {
    auto cl = Client::Connect("127.0.0.1", cfg.port);
    FGPM_CHECK(cl.ok());
    clients.push_back(std::move(*cl));
  }
  std::vector<std::vector<double>> lat(cfg.conns);  // per-conn, no locks
  std::atomic<bool> failed{false};
  std::atomic<size_t> rejected{0};
  auto t0 = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < cfg.conns; ++c) {
    // Sender: this connection owns requests k with k % conns == c.
    threads.emplace_back([&, c] {
      Rng rng(cfg.seed + 31 * c);
      ZipfDistribution zipf(cfg.pool->size(), cfg.theta);
      for (size_t k = c; k < total; k += cfg.conns) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(k / rate_qps)));
        QueryRequest req;
        req.id = k;  // scheduled time is recomputable from the id
        req.flags = net::kFlagChecksumOnly;
        req.pattern = (*cfg.pool)[zipf.Sample(&rng)];
        if (!clients[c]->Send(req).ok()) { failed = true; return; }
      }
    });
    // Receiver: latency = completion - scheduled(id).
    threads.emplace_back([&, c] {
      size_t mine = (total - c + cfg.conns - 1) / cfg.conns;
      QueryResponse resp;
      for (size_t k = 0; k < mine; ++k) {
        if (!clients[c]->Recv(&resp).ok()) { failed = true; return; }
        if (!resp.ok()) {
          // Overload points may be shed by admission control — that is
          // the server behaving as designed, not a bench failure.
          if (resp.code == StatusCode::kResourceExhausted) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          failed = true;
          return;
        }
        auto sched = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(resp.id / rate_qps));
        lat[c].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - sched)
                .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  FGPM_CHECK(!failed.load());
  pt.rejected = rejected.load();
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  pt.achieved_qps = (total - pt.rejected) / secs;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  pt.p50_us = Pct(all, 0.50);
  pt.p95_us = Pct(all, 0.95);
  pt.p99_us = Pct(all, 0.99);
  return pt;
}

}  // namespace
}  // namespace fgpm

int main(int argc, char** argv) {
  using namespace fgpm;
  // Defaults keep queries disk-dominated: the 6000-node database far
  // exceeds the 128 KiB total buffer budget, so every query pays several
  // simulated reads and throughput scales with how many shards can have
  // a read in flight — not with CPU (this box has one core).
  uint32_t nodes = 6000;
  uint32_t latency_us = 500;
  size_t total_buffer = 128 << 10;  // constant budget, divided per shard
  size_t conns = 16, burst_per_conn = 120;
  double theta = 0.9, duration_s = 2.0;
  uint64_t seed = 0xfeed;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) nodes = std::stoul(arg.substr(8));
    if (arg.rfind("--latency-us=", 0) == 0) latency_us = std::stoul(arg.substr(13));
    if (arg.rfind("--buffer-kb=", 0) == 0) total_buffer = std::stoul(arg.substr(12)) << 10;
    if (arg.rfind("--conns=", 0) == 0) conns = std::stoul(arg.substr(8));
    if (arg.rfind("--burst=", 0) == 0) burst_per_conn = std::stoul(arg.substr(8));
    if (arg.rfind("--theta=", 0) == 0) theta = std::stod(arg.substr(8));
    if (arg.rfind("--duration-s=", 0) == 0) duration_s = std::stod(arg.substr(13));
    if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
  }

  bench::PrintHeader(
      "Query server — thread-per-core shards, open-loop latency",
      "Zipfian pattern mix over SO_REUSEPORT workers; saturation qps and "
      "p50/p95/p99 per arrival rate at 1/2/4/8 shards; identical rows "
      "vs direct Match required",
      1.0);
  std::printf(
      "%u-node scale-free graph, %u labels in %u groups, disk %u us, "
      "total buffer %zu KiB (split across shards), %zu conns, zipf %.2f\n\n",
      nodes, kLabels, kGroups, latency_us, total_buffer >> 10, conns, theta);

  Graph g = gen::ScaleFree(nodes, 3, kLabels, seed);
  const std::vector<std::string> pool = BuildPool();

  // Reference rows once, from a direct (unsharded, unthrottled) matcher.
  auto direct = GraphMatcher::Create(&g, {}, {});
  FGPM_CHECK(direct.ok());
  std::vector<std::vector<std::vector<NodeId>>> reference(pool.size());
  std::vector<uint64_t> ref_checksum(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    auto r = (*direct)->Match(pool[i]);
    FGPM_CHECK(r.ok());
    r->SortRows();
    reference[i] = std::move(r->rows);
    ref_checksum[i] = bench::RowSetChecksum(reference[i]);
  }

  std::vector<ShardRun> runs;
  std::vector<double> rates;  // fixed sweep, derived from 1-shard sat
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ServerOptions opts;
    opts.num_shards = shards;
    opts.matcher.label_to_shard = GroupPlacement(shards);
    opts.matcher.db.buffer_pool_bytes = std::max<size_t>(total_buffer / shards, 32 << 10);
    opts.matcher.db.code_cache_capacity = 0;  // every query pays its reads
    opts.dispatch_window = 16;
    auto server = Server::Start(&g, opts);
    FGPM_CHECK(server.ok());

    // Row identity before anything is timed (and before the simulated
    // disk latency is switched on): full-row responses must equal the
    // direct matcher's rows for every pool pattern.
    {
      auto cl = Client::Connect("127.0.0.1", (*server)->port());
      FGPM_CHECK(cl.ok());
      for (size_t i = 0; i < pool.size(); ++i) {
        QueryRequest req;
        req.id = i;
        req.pattern = pool[i];
        auto resp = (*cl)->Query(req);
        FGPM_CHECK(resp.ok() && resp->ok());
        auto rows = resp->rows;
        std::sort(rows.begin(), rows.end());
        FGPM_CHECK(rows == reference[i]);
        FGPM_CHECK(bench::RowSetChecksum(rows) == ref_checksum[i]);
      }
    }
    for (uint32_t s = 0; s < shards; ++s) {
      (*server)->matcher()->shard(s)->db().buffer_pool()->disk()
          ->set_simulated_read_latency_us(latency_us);
    }

    LoadConfig cfg{&pool, theta, seed, conns, (*server)->port()};
    ShardRun run;
    run.shards = shards;
    auto sched0 = Scheduler::Global().GetStats();
    auto w0 = Clock::now();
    run.saturation_qps = SaturationBurst(cfg, burst_per_conn);
    std::printf("  %u shard%s: saturation %8.0f q/s\n", shards,
                shards == 1 ? " " : "s", run.saturation_qps);
    if (rates.empty()) {
      // Same absolute arrival rates for every shard count: below,
      // near, and past the 1-shard capacity.
      rates = {0.4 * run.saturation_qps, 0.8 * run.saturation_qps,
               1.6 * run.saturation_qps, 3.2 * run.saturation_qps};
    }
    for (double rate : rates) {
      size_t total = std::min<size_t>(
          static_cast<size_t>(rate * duration_s), 8000);
      RatePoint pt = OpenLoop(cfg, rate, total);
      std::printf(
          "      rate %7.0f q/s: achieved %7.0f q/s, p50 %8.0f us, "
          "p95 %8.0f us, p99 %8.0f us%s\n",
          pt.offered_qps, pt.achieved_qps, pt.p50_us, pt.p95_us, pt.p99_us,
          pt.rejected ? (" (" + std::to_string(pt.rejected) + " shed)").c_str()
                      : "");
      std::fflush(stdout);
      run.points.push_back(pt);
    }
    auto sched1 = Scheduler::Global().GetStats();
    double window_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - w0).count();
    run.workers = BusyDeltas(sched0, sched1, window_ns);
    for (const auto& w : run.workers) {
      if (w.busy_frac < 0.005 && w.tasks == 0) continue;
      std::printf("      worker %-6s busy %5.1f%%  tasks %6llu  steals %6llu\n",
                  w.tag.c_str(), 100 * w.busy_frac, (unsigned long long)w.tasks,
                  (unsigned long long)w.steals);
    }
    std::fflush(stdout);
    runs.push_back(std::move(run));
  }

  double speedup = runs.back().saturation_qps / runs.front().saturation_qps;
  std::printf("\naggregate throughput at 8 shards vs 1: %.2fx (gate: >= 3x)\n",
              speedup);

  FILE* f = std::fopen("BENCH_server.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"server\",\n  \"nodes\": %u,\n"
               "  \"labels\": %u,\n  \"disk_latency_us\": %u,\n"
               "  \"total_buffer_kb\": %zu,\n  \"conns\": %zu,\n"
               "  \"theta\": %.2f,\n  \"identical_rows\": true,\n"
               "  \"speedup_8v1\": %.3f,\n  \"shards\": [\n",
               nodes, kLabels, latency_us, total_buffer >> 10, conns, theta,
               speedup);
  for (size_t i = 0; i < runs.size(); ++i) {
    const ShardRun& r = runs[i];
    std::fprintf(f, "    {\"shards\": %u, \"saturation_qps\": %.1f, \"rates\": [\n",
                 r.shards, r.saturation_qps);
    for (size_t j = 0; j < r.points.size(); ++j) {
      const RatePoint& p = r.points[j];
      std::fprintf(f,
                   "      {\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
                   "\"sent\": %zu, \"rejected\": %zu, \"p50_us\": %.1f, "
                   "\"p95_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   p.offered_qps, p.achieved_qps, p.sent, p.rejected, p.p50_us,
                   p.p95_us, p.p99_us, j + 1 < r.points.size() ? "," : "");
    }
    std::fprintf(f, "    ], \"workers\": [");
    for (size_t j = 0; j < r.workers.size(); ++j) {
      const WorkerLoad& w = r.workers[j];
      std::fprintf(f,
                   "{\"tag\": \"%s\", \"busy_frac\": %.4f, \"tasks\": %llu, "
                   "\"steals\": %llu}%s",
                   w.tag.c_str(), w.busy_frac, (unsigned long long)w.tasks,
                   (unsigned long long)w.steals,
                   j + 1 < r.workers.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_server.json\n");
  return 0;
}
