// Observability overhead A/B: the same binary runs the query workload
// with (a) the obs runtime kill switch off (approximating FGPM_OBS=OFF
// — write paths reduce to one relaxed load), (b) trace_level=0 (the
// always-on aggregates the <3% budget applies to), and (c)
// trace_level=1 (full per-step spans, for information). Writes
// BENCH_obs.json with the measured medians and the level-0 overhead
// against the kill-switch baseline.
//
// For a true compiled-out baseline, configure a second tree with
// -DFGPM_OBS=OFF and compare its level0 column against this binary's;
// the kill switch tracks it to well under a percent.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace fgpm {
namespace {

struct Mode {
  const char* name;
  bool obs_enabled;
  int trace_level;
};

constexpr Mode kModes[] = {
    {"obs_off", false, 0},
    {"level0", true, 0},
    {"level1", true, 1},
};

const char* kPatterns[] = {
    "L0->L1; L1->L2",
    "L0->L1; L1->L2; L0->L2",
    "L0->L1; L0->L2; L1->L3; L2->L3",
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// One rep: the full pattern set, repeated to push per-rep wall time
// into a range where scheduler noise is small relative to the signal.
double RunRep(GraphMatcher& matcher, int inner) {
  WallTimer t;
  for (int i = 0; i < inner; ++i) {
    for (const char* p : kPatterns) {
      auto r = matcher.Match(p);
      FGPM_CHECK(r.ok());
    }
  }
  return t.ElapsedMillis();
}

}  // namespace

int Main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 9;
  const int inner = argc > 2 ? std::atoi(argv[2]) : 8;

  bench::PrintHeader("obs_overhead",
                     "observability overhead: kill-switch-off vs "
                     "trace_level=0 vs trace_level=1",
                     1.0);
  if (!obs::kCompiledIn) {
    std::printf("built with FGPM_OBS=OFF: every mode is the compiled-out "
                "path; overhead is 0 by construction\n");
  }

  // Deliberately modest: reachability patterns on a dense ER DAG blow
  // up combinatorially, and the bench only needs enough work per rep
  // to dominate scheduler noise (~tens of ms), not a table-scale run.
  Graph g = gen::ErdosRenyi(220, 560, 5, 13);

  // One matcher per mode, all warmed up front; reps are interleaved
  // round-robin across the modes so every mode samples the same time
  // windows (frequency scaling, page cache and background noise hit
  // all modes alike instead of whichever mode runs first).
  std::unique_ptr<GraphMatcher> matchers[3];
  std::vector<double> times[3];
  uint64_t rows_checksum[3] = {0, 0, 0};
  for (size_t m = 0; m < std::size(kModes); ++m) {
    ExecOptions opts;
    opts.trace_level = kModes[m].trace_level;
    auto mm = GraphMatcher::Create(&g, {}, opts);
    FGPM_CHECK(mm.ok());
    matchers[m] = std::move(*mm);
    // Warm the plan cache and buffer pool out of the measurement.
    obs::SetEnabled(kModes[m].obs_enabled);
    (void)RunRep(*matchers[m], 1);
  }
  for (int r = 0; r < reps; ++r) {
    for (size_t m = 0; m < std::size(kModes); ++m) {
      obs::SetEnabled(kModes[m].obs_enabled);
      times[m].push_back(RunRep(*matchers[m], inner));
    }
  }
  obs::SetEnabled(true);

  double medians[3] = {0, 0, 0};
  for (size_t m = 0; m < std::size(kModes); ++m) {
    for (const char* p : kPatterns) {
      auto r = matchers[m]->Match(p);
      FGPM_CHECK(r.ok());
      rows_checksum[m] += r->rows.size();
    }
    medians[m] = Median(times[m]);
    std::printf("%-8s trace_level=%d  median %.3f ms/rep (%d reps x %d "
                "iterations of %zu patterns)\n",
                kModes[m].name, kModes[m].trace_level, medians[m], reps, inner,
                std::size(kPatterns));
  }
  FGPM_CHECK(rows_checksum[0] == rows_checksum[1] &&
             rows_checksum[1] == rows_checksum[2]);

  const double overhead_l0 = (medians[1] - medians[0]) / medians[0] * 100.0;
  const double overhead_l1 = (medians[2] - medians[0]) / medians[0] * 100.0;
  const bool pass = overhead_l0 < 3.0;
  std::printf("\ntrace_level=0 overhead vs obs-off: %+.2f%% (budget < 3%%) "
              "%s\ntrace_level=1 overhead vs obs-off: %+.2f%%\n",
              overhead_l0, pass ? "PASS" : "FAIL", overhead_l1);

  FILE* f = std::fopen("BENCH_obs.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"obs_overhead\",\n"
               "  \"compiled_in\": %s,\n"
               "  \"reps\": %d,\n  \"inner_iterations\": %d,\n"
               "  \"modes\": [\n",
               obs::kCompiledIn ? "true" : "false", reps, inner);
  for (size_t m = 0; m < std::size(kModes); ++m) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"trace_level\": %d, "
                 "\"median_ms\": %.3f}%s\n",
                 kModes[m].name, kModes[m].trace_level, medians[m],
                 m + 1 < std::size(kModes) ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"overhead_pct\": {\"level0\": %.3f, "
               "\"level1\": %.3f},\n"
               "  \"budget_pct\": 3.0,\n  \"pass\": %s\n}\n",
               overhead_l0, overhead_l1, pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_obs.json\n");
  return 0;
}

}  // namespace fgpm

int main(int argc, char** argv) { return fgpm::Main(argc, argv); }
