// Observability overhead A/B: the same binary runs the query workload
// with (a) the obs runtime kill switch off (approximating FGPM_OBS=OFF
// — write paths reduce to one relaxed load), (b) trace_level=0 (the
// always-on aggregates the <3% budget applies to), and (c)
// trace_level=1 (full per-step spans, for information). Writes
// BENCH_obs.json with the measured medians and the level-0 overhead
// against the kill-switch baseline.
//
// For a true compiled-out baseline, configure a second tree with
// -DFGPM_OBS=OFF and compare its level0 column against this binary's;
// the kill switch tracks it to well under a percent.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace fgpm {
namespace {

struct Mode {
  const char* name;
  bool obs_enabled;
  int trace_level;
};

constexpr Mode kModes[] = {
    {"obs_off", false, 0},
    {"level0", true, 0},
    {"level1", true, 1},
};

const char* kPatterns[] = {
    "L0->L1; L1->L2",
    "L0->L1; L1->L2; L0->L2",
    "L0->L1; L0->L2; L1->L3; L2->L3",
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// One rep: the full pattern set, repeated to push per-rep wall time
// into a range where scheduler noise is small relative to the signal.
double RunRep(GraphMatcher& matcher, int inner) {
  WallTimer t;
  for (int i = 0; i < inner; ++i) {
    for (const char* p : kPatterns) {
      auto r = matcher.Match(p);
      FGPM_CHECK(r.ok());
    }
  }
  return t.ElapsedMillis();
}

// One server-path rep: the pattern set over a real socket,
// checksum-only responses (wire cost without row payload noise).
double RunServerRep(net::Client& client, int inner) {
  WallTimer t;
  uint64_t id = 0;
  for (int i = 0; i < inner; ++i) {
    for (const char* p : kPatterns) {
      net::QueryRequest req;
      req.id = ++id;
      req.flags = net::kFlagChecksumOnly;
      req.pattern = p;
      auto r = client.Query(req);
      FGPM_CHECK(r.ok() && r->ok());
    }
  }
  return t.ElapsedMillis();
}

// A/B over real sockets: the full serving-path observability plane
// (head-based trace sampling + windowed metrics + SLO watchdog +
// scheduler profiler) against a server with sampling and profiling off.
// Both servers answer the same queries; checksums are verified
// identical before anything is timed.
struct ServerPathResult {
  double off_median_ms = 0;
  double on_median_ms = 0;
  double overhead_pct = 0;
  bool pass = true;
  bool ran = false;
};

ServerPathResult RunServerPath(const Graph* g, int reps, int inner) {
  ServerPathResult out;
  net::ServerOptions off_opts;
  off_opts.num_shards = 2;
  off_opts.trace_sample_n = 0;
  off_opts.metrics_window_s = 0;
  net::ServerOptions on_opts = off_opts;
  on_opts.trace_sample_n = 4;    // trace every 4th request per worker
  on_opts.metrics_window_s = 30; // windowed p50/p95/p99 + exemplars
  on_opts.slo_p99_ms = 1000;     // watchdog armed but never breaching
  on_opts.profile_sample_us = 1000;

  auto off_server = net::Server::Start(g, off_opts);
  auto on_server = net::Server::Start(g, on_opts);
  FGPM_CHECK(off_server.ok() && on_server.ok());
  net::Server* servers[2] = {off_server->get(), on_server->get()};
  std::unique_ptr<net::Client> clients[2];
  for (int m = 0; m < 2; ++m) {
    auto c = net::Client::Connect("127.0.0.1", servers[m]->port());
    FGPM_CHECK(c.ok());
    clients[m] = std::move(*c);
  }

  // Rows identical across modes, verified before timing.
  for (const char* p : kPatterns) {
    uint64_t counts[2], sums[2];
    for (int m = 0; m < 2; ++m) {
      net::QueryRequest req;
      req.id = 1;
      req.flags = net::kFlagChecksumOnly;
      req.pattern = p;
      auto r = clients[m]->Query(req);
      FGPM_CHECK(r.ok() && r->ok());
      counts[m] = r->row_count;
      sums[m] = r->checksum;
    }
    FGPM_CHECK(counts[0] == counts[1] && sums[0] == sums[1]);
  }

  // Interleaved reps, same rationale as the direct-path bench.
  std::vector<double> times[2];
  for (int m = 0; m < 2; ++m) (void)RunServerRep(*clients[m], 1);  // warm
  for (int r = 0; r < reps; ++r) {
    for (int m = 0; m < 2; ++m) {
      times[m].push_back(RunServerRep(*clients[m], inner));
    }
  }
  out.off_median_ms = Median(times[0]);
  out.on_median_ms = Median(times[1]);
  out.overhead_pct =
      (out.on_median_ms - out.off_median_ms) / out.off_median_ms * 100.0;
  out.pass = out.overhead_pct < 3.0;
  out.ran = true;
  for (int m = 0; m < 2; ++m) {
    clients[m].reset();
    servers[m]->Stop();
  }
  return out;
}

}  // namespace

int Main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 9;
  const int inner = argc > 2 ? std::atoi(argv[2]) : 8;

  bench::PrintHeader("obs_overhead",
                     "observability overhead: kill-switch-off vs "
                     "trace_level=0 vs trace_level=1",
                     1.0);
  if (!obs::kCompiledIn) {
    std::printf("built with FGPM_OBS=OFF: every mode is the compiled-out "
                "path; overhead is 0 by construction\n");
  }

  // Deliberately modest: reachability patterns on a dense ER DAG blow
  // up combinatorially, and the bench only needs enough work per rep
  // to dominate scheduler noise (~tens of ms), not a table-scale run.
  Graph g = gen::ErdosRenyi(220, 560, 5, 13);

  // One matcher per mode, all warmed up front; reps are interleaved
  // round-robin across the modes so every mode samples the same time
  // windows (frequency scaling, page cache and background noise hit
  // all modes alike instead of whichever mode runs first).
  std::unique_ptr<GraphMatcher> matchers[3];
  std::vector<double> times[3];
  uint64_t rows_checksum[3] = {0, 0, 0};
  for (size_t m = 0; m < std::size(kModes); ++m) {
    ExecOptions opts;
    opts.trace_level = kModes[m].trace_level;
    auto mm = GraphMatcher::Create(&g, {}, opts);
    FGPM_CHECK(mm.ok());
    matchers[m] = std::move(*mm);
    // Warm the plan cache and buffer pool out of the measurement.
    obs::SetEnabled(kModes[m].obs_enabled);
    (void)RunRep(*matchers[m], 1);
  }
  for (int r = 0; r < reps; ++r) {
    for (size_t m = 0; m < std::size(kModes); ++m) {
      obs::SetEnabled(kModes[m].obs_enabled);
      times[m].push_back(RunRep(*matchers[m], inner));
    }
  }
  obs::SetEnabled(true);

  double medians[3] = {0, 0, 0};
  for (size_t m = 0; m < std::size(kModes); ++m) {
    for (const char* p : kPatterns) {
      auto r = matchers[m]->Match(p);
      FGPM_CHECK(r.ok());
      rows_checksum[m] += r->rows.size();
    }
    medians[m] = Median(times[m]);
    std::printf("%-8s trace_level=%d  median %.3f ms/rep (%d reps x %d "
                "iterations of %zu patterns)\n",
                kModes[m].name, kModes[m].trace_level, medians[m], reps, inner,
                std::size(kPatterns));
  }
  FGPM_CHECK(rows_checksum[0] == rows_checksum[1] &&
             rows_checksum[1] == rows_checksum[2]);

  const double overhead_l0 = (medians[1] - medians[0]) / medians[0] * 100.0;
  const double overhead_l1 = (medians[2] - medians[0]) / medians[0] * 100.0;
  const bool direct_pass = overhead_l0 < 3.0;
  std::printf("\ntrace_level=0 overhead vs obs-off: %+.2f%% (budget < 3%%) "
              "%s\ntrace_level=1 overhead vs obs-off: %+.2f%%\n",
              overhead_l0, direct_pass ? "PASS" : "FAIL", overhead_l1);

  // Server path: sampling + windows + profiler on vs off, real sockets.
  ServerPathResult sp = RunServerPath(&g, reps, inner);
  std::printf("\nserver path (2 shards, checksum-only, loopback):\n"
              "  sampling off  median %.3f ms/rep\n"
              "  sampling on   median %.3f ms/rep (trace 1/4 + windows + "
              "profiler)\n"
              "  overhead %+.2f%% (budget < 3%%) %s\n",
              sp.off_median_ms, sp.on_median_ms, sp.overhead_pct,
              sp.pass ? "PASS" : "FAIL");
  const bool pass = direct_pass && sp.pass;

  FILE* f = std::fopen("BENCH_obs.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"obs_overhead\",\n"
               "  \"compiled_in\": %s,\n"
               "  \"reps\": %d,\n  \"inner_iterations\": %d,\n"
               "  \"modes\": [\n",
               obs::kCompiledIn ? "true" : "false", reps, inner);
  for (size_t m = 0; m < std::size(kModes); ++m) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"trace_level\": %d, "
                 "\"median_ms\": %.3f}%s\n",
                 kModes[m].name, kModes[m].trace_level, medians[m],
                 m + 1 < std::size(kModes) ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"overhead_pct\": {\"level0\": %.3f, "
               "\"level1\": %.3f},\n"
               "  \"server_path\": {\"off_median_ms\": %.3f, "
               "\"on_median_ms\": %.3f, \"overhead_pct\": %.3f, "
               "\"pass\": %s},\n"
               "  \"budget_pct\": 3.0,\n  \"pass\": %s\n}\n",
               sp.off_median_ms, sp.on_median_ms, sp.overhead_pct,
               sp.pass ? "true" : "false", pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_obs.json\n");
  return 0;
}

}  // namespace fgpm

int main(int argc, char** argv) { return fgpm::Main(argc, argv); }
