// Reproduces Figure 7(a)-(c): scalability of DP vs DPS across the five
// datasets 20M..100M, for a path pattern (Figure 4(a) shape), a tree
// pattern (Figure 4(d) shape) and a graph pattern (Figure 4(i) shape).
// Expected shape: both grow with data size; DPS stays well below DP and
// the gap widens (the paper reports >= one order of magnitude).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/datasets.h"
#include "workload/patterns.h"

int main() {
  using namespace fgpm;
  double scale = workload::BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 7(a-c) — Scalability of DP vs DPS over 20M..100M",
      "elapsed ms per dataset; paper shape: DPS an order of magnitude "
      "below DP, gap widening with scale",
      scale);

  struct Panel {
    const char* title;
    Pattern pattern;
  };
  Panel panels[] = {
      {"Figure 7(a) path pattern (Fig. 4(a))",
       *Pattern::Parse("site->region->item")},
      {"Figure 7(b) tree pattern (Fig. 4(d))",
       *Pattern::Parse("region->item; item->name; item->incategory")},
      {"Figure 7(c) graph pattern (Fig. 4(i))",
       *Pattern::Parse("person->watch; watch->open_auction; "
                       "open_auction->itemref; itemref->item; person->item")},
  };

  auto specs = workload::PaperDatasets();
  for (const Panel& panel : panels) {
    std::printf("\n%s: %s\n", panel.title, panel.pattern.ToString().c_str());
    std::printf("%-8s %10s %9s | %9s %9s %7s | %11s %11s %7s\n", "dataset",
                "|V|", "matches", "DP(ms)", "DPS(ms)", "t-ratio", "DP(pages)",
                "DPS(pages)", "ratio");
    for (const auto& spec : specs) {
      Graph g = workload::LoadDataset(spec, scale);
      auto matcher = GraphMatcher::Create(&g);
      if (!matcher.ok()) {
        std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
        return 1;
      }
      auto dp = bench::RunEngine(**matcher, panel.pattern, Engine::kDp);
      auto dps = bench::RunEngine(**matcher, panel.pattern, Engine::kDps);
      std::printf("%-8s %10zu %9zu | %9.2f %9.2f %7.2f | %11llu %11llu %7.2f\n",
                  spec.name.c_str(), g.NumNodes(), dps.rows, dp.ms, dps.ms,
                  dps.ms > 0 ? dp.ms / dps.ms : 0.0,
                  (unsigned long long)dp.pages, (unsigned long long)dps.pages,
                  dps.pages ? double(dp.pages) / double(dps.pages) : 0.0);
    }
  }
  return 0;
}
