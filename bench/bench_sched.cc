// Fork-join vs work-stealing scheduler A/B (PR 9 tentpole).
//
// Two experiments back the morsel scheduler's claims:
//
//  1. ParallelFor microbench — the PR 1 chunked fork-join pool
//     (ForkJoinPool) against the work-stealing facade (ThreadPool) on a
//     uniform body and on a skewed body (the first eighth of the chunks
//     carries 16x the work). Gate: the stealing path is within 5% of
//     fork-join on the uniform body — the new machinery must not tax
//     the case the old pool was built for.
//
//  2. Hot-shard server sweep — unlike bench_server's pool (hot ranks
//     snake across shards), here every hot pattern lives on ONE shard,
//     so at Zipf 1.2 a thread-per-shard server serializes most of the
//     offered load on a single worker while seven sit idle in
//     epoll_wait. The A/B toggles ServerOptions::use_shared_scheduler:
//       off = the exact pre-PR baseline (per-shard matcher, one exec
//             thread, no scheduler participation);
//       on  = all 8 workers join the process-wide scheduler and the hot
//             shard's queries fan morsels to whoever is idle.
//     Per theta in {0.6, 0.9, 1.2} the bench reports saturation
//     throughput and open-loop p50/p95/p99 at rates derived from the
//     baseline's capacity, plus per-worker busy fractions and
//     steal/split counts from Scheduler::GetStats() for the stealing
//     run. Row identity against a direct GraphMatcher is asserted for
//     every pattern on every server before anything is timed.
//
// Gate (at theta 1.2, 8 workers): >= 2x saturation throughput OR
// >= 2x lower p99 vs the thread-per-shard baseline. Results go to
// BENCH_sched.json; `make bench-sched` runs it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/scheduler.h"
#include "common/timer.h"
#include "core/graph_matcher.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"

namespace fgpm {
namespace {

using Clock = std::chrono::steady_clock;
using net::Client;
using net::QueryRequest;
using net::QueryResponse;
using net::Server;
using net::ServerOptions;

// ---------------------------------------------------------------------------
// Part 1: ParallelFor microbench.

// Per-row work: a few dependent integer mixes. `mult` scales the work so
// the skewed body can make early chunks expensive.
inline uint64_t MixRows(size_t begin, size_t end, int mult) {
  uint64_t acc = 0x9e3779b97f4a7c15ull + begin;
  for (size_t i = begin; i < end; ++i) {
    for (int m = 0; m < mult; ++m) {
      acc ^= acc >> 33;
      acc *= 0xff51afd7ed558ccdull;
      acc ^= i;
    }
  }
  return acc;
}

struct MicroResult {
  double forkjoin_ms = 0;
  double steal_ms = 0;
  uint64_t forkjoin_sum = 0;
  uint64_t steal_sum = 0;
};

// Runs the same (n, chunk_size, per-chunk multiplier) region through
// both pools, best-of-`reps`, and checks the reduced checksums agree
// (same chunks => same per-chunk partials regardless of scheduling).
MicroResult MicroBench(size_t n, size_t chunk_size, unsigned width, int reps,
                       const std::function<int(size_t chunk)>& mult_of) {
  const size_t num_chunks = ThreadPool::NumChunks(n, chunk_size);
  std::vector<uint64_t> partial(num_chunks);
  auto body = [&](unsigned, size_t chunk, size_t begin, size_t end) {
    partial[chunk] = MixRows(begin, end, mult_of(chunk));
  };
  auto reduce = [&] {
    uint64_t acc = 0;
    for (uint64_t p : partial) acc = acc * 1099511628211ull + p;
    return acc;
  };

  MicroResult out;
  {
    ForkJoinPool pool(width);
    out.forkjoin_ms = bench::BestOfMs(reps, [&](int) {
      WallTimer t;
      pool.ParallelFor(n, chunk_size, body);
      return t.ElapsedMillis();
    });
    out.forkjoin_sum = reduce();
  }
  {
    ThreadPool pool(width);  // work-stealing facade
    out.steal_ms = bench::BestOfMs(reps, [&](int) {
      WallTimer t;
      pool.ParallelFor(n, chunk_size, body);
      return t.ElapsedMillis();
    });
    out.steal_sum = reduce();
  }
  FGPM_CHECK(out.forkjoin_sum == out.steal_sum);
  return out;
}

// ---------------------------------------------------------------------------
// Part 2: hot-shard server sweep (harness mirrors bench_server.cc).

constexpr uint32_t kLabels = 32;  // 8 groups of 4 co-located labels
constexpr uint32_t kGroups = 8;
constexpr uint32_t kShards = 8;

// Pattern pool, hot-to-cold (Zipf rank = index). The six hottest
// patterns all touch only group 0 (labels 0..3) — with the group-g ->
// shard-g placement below, the entire Zipf head lands on shard 0. The
// tail spreads over the other seven groups plus two cross-shard
// patterns so the cold shards are exercised too.
std::vector<std::string> BuildHotShardPool() {
  auto L = [](uint32_t l) { return "L" + std::to_string(l); };
  std::vector<std::string> pool = {
      L(0) + "->" + L(1),
      L(1) + "->" + L(2) + "; " + L(2) + "->" + L(3),
      L(0) + "->" + L(2) + "; " + L(0) + "->" + L(3),
      L(2) + "->" + L(3),
      L(0) + "->" + L(1) + "; " + L(1) + "->" + L(3),
      L(0) + "->" + L(3),
  };
  for (uint32_t g = 1; g < kGroups; ++g) {
    uint32_t b = 4 * g;
    pool.push_back(L(b) + "->" + L(b + 1));
    pool.push_back(L(b + 1) + "->" + L(b + 2) + "; " + L(b + 2) + "->" + L(b + 3));
  }
  pool.push_back(L(1) + "->" + L(5));
  pool.push_back(L(9) + "->" + L(13));
  return pool;
}

std::vector<uint32_t> GroupPlacement(uint32_t num_shards) {
  std::vector<uint32_t> placement(kLabels);
  for (uint32_t l = 0; l < kLabels; ++l) placement[l] = (l / 4) % num_shards;
  return placement;
}

double Pct(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  size_t i = static_cast<size_t>(q * (v.size() - 1));
  std::nth_element(v.begin(), v.begin() + i, v.end());
  return v[i];
}

struct LoadConfig {
  const std::vector<std::string>* pool;
  double theta;
  uint64_t seed;
  size_t conns;
  uint16_t port;
};

// Pipelined burst: every connection fires `per_conn` Zipf-sampled
// checksum-only requests back-to-back, then drains. Returns aggregate
// completed requests/sec.
double SaturationBurst(const LoadConfig& cfg, size_t per_conn) {
  std::vector<std::unique_ptr<Client>> clients;
  for (size_t c = 0; c < cfg.conns; ++c) {
    auto cl = Client::Connect("127.0.0.1", cfg.port);
    FGPM_CHECK(cl.ok());
    clients.push_back(std::move(*cl));
  }
  std::atomic<bool> failed{false};
  auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < cfg.conns; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(cfg.seed + 17 * c);
      ZipfDistribution zipf(cfg.pool->size(), cfg.theta);
      for (size_t k = 0; k < per_conn; ++k) {
        QueryRequest req;
        req.id = k;
        req.flags = net::kFlagChecksumOnly;
        req.pattern = (*cfg.pool)[zipf.Sample(&rng)];
        auto st = clients[c]->Send(req);
        if (!st.ok()) {
          std::fprintf(stderr, "burst send: %s\n", st.ToString().c_str());
          failed = true;
          return;
        }
      }
      QueryResponse resp;
      for (size_t k = 0; k < per_conn; ++k) {
        auto st = clients[c]->Recv(&resp);
        if (!st.ok() || !resp.ok()) {
          std::fprintf(stderr, "burst recv: %s / code %d %s\n",
                       st.ToString().c_str(), (int)resp.code,
                       resp.error.c_str());
          failed = true;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  FGPM_CHECK(!failed.load());
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return cfg.conns * per_conn / secs;
}

struct RatePoint {
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  size_t sent = 0;
  size_t rejected = 0;
};

// Open loop at a fixed arrival rate; latency is charged from each
// request's SCHEDULED send time (no coordinated omission).
RatePoint OpenLoop(const LoadConfig& cfg, double rate_qps, size_t total) {
  RatePoint pt;
  pt.offered_qps = rate_qps;
  pt.sent = total;
  std::vector<std::unique_ptr<Client>> clients;
  for (size_t c = 0; c < cfg.conns; ++c) {
    auto cl = Client::Connect("127.0.0.1", cfg.port);
    FGPM_CHECK(cl.ok());
    clients.push_back(std::move(*cl));
  }
  std::vector<std::vector<double>> lat(cfg.conns);
  std::atomic<bool> failed{false};
  std::atomic<size_t> rejected{0};
  auto t0 = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < cfg.conns; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(cfg.seed + 31 * c);
      ZipfDistribution zipf(cfg.pool->size(), cfg.theta);
      for (size_t k = c; k < total; k += cfg.conns) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(k / rate_qps)));
        QueryRequest req;
        req.id = k;
        req.flags = net::kFlagChecksumOnly;
        req.pattern = (*cfg.pool)[zipf.Sample(&rng)];
        auto st = clients[c]->Send(req);
        if (!st.ok()) {
          std::fprintf(stderr, "openloop send: %s\n", st.ToString().c_str());
          failed = true;
          return;
        }
      }
    });
    threads.emplace_back([&, c] {
      size_t mine = (total - c + cfg.conns - 1) / cfg.conns;
      QueryResponse resp;
      for (size_t k = 0; k < mine; ++k) {
        auto st = clients[c]->Recv(&resp);
        if (!st.ok()) {
          std::fprintf(stderr, "openloop recv: %s\n", st.ToString().c_str());
          failed = true;
          return;
        }
        if (!resp.ok()) {
          if (resp.code == StatusCode::kResourceExhausted) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          std::fprintf(stderr, "openloop resp: code %d %s\n", (int)resp.code,
                       resp.error.c_str());
          failed = true;
          return;
        }
        auto sched = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(resp.id / rate_qps));
        lat[c].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - sched)
                .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  FGPM_CHECK(!failed.load());
  pt.rejected = rejected.load();
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  pt.achieved_qps = (total - pt.rejected) / secs;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  pt.p50_us = Pct(all, 0.50);
  pt.p95_us = Pct(all, 0.95);
  pt.p99_us = Pct(all, 0.99);
  return pt;
}

struct WorkerLoad {
  std::string tag;
  bool internal = false;
  double busy_frac = 0;
  uint64_t tasks = 0, steals = 0, splits = 0;
};

// Busy fractions over a measurement window: per-worker delta of
// Scheduler busy_ns between two snapshots divided by the window's wall
// time (worker slots are append-only, so indices line up).
std::vector<WorkerLoad> BusyDeltas(const Scheduler::Stats& before,
                                   const Scheduler::Stats& after,
                                   double window_ns) {
  std::vector<WorkerLoad> out;
  for (size_t i = 0; i < after.workers.size(); ++i) {
    const auto& w1 = after.workers[i];
    Scheduler::WorkerStats w0;
    if (i < before.workers.size()) w0 = before.workers[i];
    WorkerLoad l;
    l.tag = w1.tag.empty() ? ("int" + std::to_string(i)) : w1.tag;
    l.internal = w1.internal;
    l.busy_frac = window_ns > 0 ? (w1.busy_ns - w0.busy_ns) / window_ns : 0;
    l.tasks = w1.tasks - w0.tasks;
    l.steals = w1.steals - w0.steals;
    l.splits = w1.splits - w0.splits;
    out.push_back(std::move(l));
  }
  return out;
}

struct ServerRun {
  double saturation_qps = 0;
  std::vector<RatePoint> points;
  uint64_t steals = 0, splits = 0;      // scheduler deltas over the run
  std::vector<WorkerLoad> workers;      // stealing runs only
};

struct ThetaResult {
  double theta = 0;
  ServerRun baseline;  // use_shared_scheduler = false (pre-PR)
  ServerRun steal;     // use_shared_scheduler = true
};

}  // namespace
}  // namespace fgpm

int main(int argc, char** argv) {
  using namespace fgpm;
  // Per-shard buffer = 16 frames: small against the database (queries
  // stay disk-dominated) but enough headroom for width-4 morsel
  // execution to pin pages concurrently on the hot shard.
  uint32_t nodes = 9000;
  uint32_t latency_us = 500;
  uint32_t exec_threads = 4;
  size_t total_buffer = 1024 << 10;
  size_t conns = 16, burst_per_conn = 80;
  double duration_s = 1.5;
  int micro_reps = 7;
  uint64_t seed = 0xfeed;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) nodes = std::stoul(arg.substr(8));
    if (arg.rfind("--latency-us=", 0) == 0) latency_us = std::stoul(arg.substr(13));
    if (arg.rfind("--buffer-kb=", 0) == 0) total_buffer = std::stoul(arg.substr(12)) << 10;
    if (arg.rfind("--exec-threads=", 0) == 0) exec_threads = std::stoul(arg.substr(15));
    if (arg.rfind("--conns=", 0) == 0) conns = std::stoul(arg.substr(8));
    if (arg.rfind("--burst=", 0) == 0) burst_per_conn = std::stoul(arg.substr(8));
    if (arg.rfind("--duration-s=", 0) == 0) duration_s = std::stod(arg.substr(13));
    if (arg.rfind("--reps=", 0) == 0) micro_reps = std::stoi(arg.substr(7));
    if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
  }

  bench::PrintHeader(
      "Work-stealing morsel scheduler — fork-join A/B + hot-shard serving",
      "ParallelFor microbench (uniform must be within 5%) and the Zipf "
      "hot-shard server sweep: thread-per-shard baseline vs shared "
      "scheduler at 8 workers; identical rows required before timing",
      1.0);

  // ---- Part 1: microbench ----
  const size_t kMicroN = 1 << 17, kMicroChunk = 64;
  const unsigned kMicroWidth = 4;
  std::printf("ParallelFor microbench: n=%zu chunk=%zu width=%u, best of %d\n",
              kMicroN, kMicroChunk, kMicroWidth, micro_reps);
  MicroResult uniform = MicroBench(kMicroN, kMicroChunk, kMicroWidth,
                                   micro_reps, [](size_t) { return 4; });
  // Skew: the first eighth of the chunks carries 16x the per-row work.
  const size_t num_chunks = ThreadPool::NumChunks(kMicroN, kMicroChunk);
  MicroResult skewed =
      MicroBench(kMicroN, kMicroChunk, kMicroWidth, micro_reps,
                 [num_chunks](size_t c) { return c < num_chunks / 8 ? 64 : 4; });
  double uniform_ratio = uniform.steal_ms / uniform.forkjoin_ms;
  double skewed_ratio = skewed.steal_ms / skewed.forkjoin_ms;
  std::printf("  uniform: forkjoin %7.2f ms   steal %7.2f ms   (steal/forkjoin %.3f)\n",
              uniform.forkjoin_ms, uniform.steal_ms, uniform_ratio);
  std::printf("  skewed : forkjoin %7.2f ms   steal %7.2f ms   (steal/forkjoin %.3f)\n",
              skewed.forkjoin_ms, skewed.steal_ms, skewed_ratio);
  std::printf("  uniform overhead gate (<= 1.05): %s\n\n",
              uniform_ratio <= 1.05 ? "PASS" : "FAIL");

  // ---- Part 2: hot-shard server sweep ----
  std::printf(
      "hot-shard server sweep: %u-node graph, %u shards, disk %u us, "
      "total buffer %zu KiB, %zu conns\n",
      nodes, kShards, latency_us, total_buffer >> 10, conns);

  Graph g = gen::ScaleFree(nodes, 3, kLabels, seed);
  const std::vector<std::string> pool = BuildHotShardPool();

  auto direct = GraphMatcher::Create(&g, {}, {});
  FGPM_CHECK(direct.ok());
  std::vector<std::vector<std::vector<NodeId>>> reference(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    auto r = (*direct)->Match(pool[i]);
    FGPM_CHECK(r.ok());
    r->SortRows();
    reference[i] = std::move(r->rows);
  }

  // Runs one server config through the burst + two open-loop points at
  // 0.8x / 1.4x of `anchor_qps` (<= 0 anchors on this run's own
  // saturation — the baseline anchors itself, the steal run reuses the
  // baseline's rates so latencies compare at identical offered load).
  auto run_server = [&](bool shared_scheduler, double theta,
                        double anchor_qps) {
    ServerOptions opts;
    opts.num_shards = kShards;
    opts.use_shared_scheduler = shared_scheduler;
    if (shared_scheduler) opts.matcher.exec.num_threads = exec_threads;
    opts.matcher.label_to_shard = GroupPlacement(kShards);
    opts.matcher.db.buffer_pool_bytes =
        std::max<size_t>(total_buffer / kShards, 32 << 10);
    opts.matcher.db.code_cache_capacity = 0;  // every query pays its reads
    opts.dispatch_window = 16;
    auto server = Server::Start(&g, opts);
    FGPM_CHECK(server.ok());

    // Row identity before the disk latency is switched on and before
    // anything is timed.
    {
      auto cl = Client::Connect("127.0.0.1", (*server)->port());
      FGPM_CHECK(cl.ok());
      for (size_t i = 0; i < pool.size(); ++i) {
        QueryRequest req;
        req.id = i;
        req.pattern = pool[i];
        auto resp = (*cl)->Query(req);
        FGPM_CHECK(resp.ok() && resp->ok());
        auto rows = resp->rows;
        std::sort(rows.begin(), rows.end());
        FGPM_CHECK(rows == reference[i]);
      }
    }
    for (uint32_t s = 0; s < kShards; ++s) {
      (*server)->matcher()->shard(s)->db().buffer_pool()->disk()
          ->set_simulated_read_latency_us(latency_us);
    }

    LoadConfig cfg{&pool, theta, seed, conns, (*server)->port()};
    ServerRun run;
    auto stats0 = Scheduler::Global().GetStats();
    auto w0 = Clock::now();
    run.saturation_qps = SaturationBurst(cfg, burst_per_conn);
    if (anchor_qps <= 0) anchor_qps = run.saturation_qps;
    std::vector<double> rates = {0.8 * anchor_qps, 1.4 * anchor_qps};
    for (double rate : rates) {
      size_t total =
          std::min<size_t>(static_cast<size_t>(rate * duration_s), 4000);
      run.points.push_back(OpenLoop(cfg, rate, total));
    }
    auto stats1 = Scheduler::Global().GetStats();
    double window_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - w0).count();
    run.steals = stats1.steals - stats0.steals;
    run.splits = stats1.splits - stats0.splits;
    if (shared_scheduler) run.workers = BusyDeltas(stats0, stats1, window_ns);
    (*server)->Stop();
    return run;
  };

  std::vector<ThetaResult> results;
  for (double theta : {0.6, 0.9, 1.2}) {
    ThetaResult res;
    res.theta = theta;
    // Baseline first: its capacity anchors the shared arrival rates
    // (below baseline capacity, and past it).
    res.baseline = run_server(/*shared_scheduler=*/false, theta, 0);
    res.steal = run_server(/*shared_scheduler=*/true, theta,
                           res.baseline.saturation_qps);

    std::printf("  theta %.1f: saturation baseline %7.0f q/s   steal %7.0f q/s"
                "   (%.2fx)\n",
                theta, res.baseline.saturation_qps, res.steal.saturation_qps,
                res.steal.saturation_qps / res.baseline.saturation_qps);
    for (size_t j = 0; j < res.baseline.points.size(); ++j) {
      const RatePoint& b = res.baseline.points[j];
      const RatePoint& s = res.steal.points[j];
      std::printf("      rate %7.0f q/s: p99 baseline %9.0f us   steal %9.0f us"
                  "   (%.2fx lower)\n",
                  b.offered_qps, b.p99_us, s.p99_us,
                  s.p99_us > 0 ? b.p99_us / s.p99_us : 0);
    }
    std::printf("      steal run: %llu steals, %llu splits\n",
                (unsigned long long)res.steal.steals,
                (unsigned long long)res.steal.splits);
    for (const auto& w : res.steal.workers) {
      if (w.busy_frac < 0.005 && w.tasks == 0) continue;
      std::printf("        worker %-6s busy %5.1f%%  tasks %6llu  steals %6llu\n",
                  w.tag.c_str(), 100 * w.busy_frac,
                  (unsigned long long)w.tasks, (unsigned long long)w.steals);
    }
    std::fflush(stdout);
    results.push_back(std::move(res));
  }

  const ThetaResult& hot = results.back();  // theta 1.2
  double sat_ratio = hot.steal.saturation_qps / hot.baseline.saturation_qps;
  double p99_ratio =
      hot.steal.points.back().p99_us > 0
          ? hot.baseline.points.back().p99_us / hot.steal.points.back().p99_us
          : 0;
  bool gate = sat_ratio >= 2.0 || p99_ratio >= 2.0;
  std::printf(
      "\ntheta 1.2 gate (>= 2x saturation OR >= 2x lower p99): "
      "saturation %.2fx, p99 %.2fx lower -> %s\n",
      sat_ratio, p99_ratio, gate ? "PASS" : "FAIL");

  FILE* f = std::fopen("BENCH_sched.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"sched\",\n  \"identical_rows\": true,\n"
               "  \"micro\": {\n"
               "    \"n\": %zu, \"chunk\": %zu, \"width\": %u,\n"
               "    \"uniform\": {\"forkjoin_ms\": %.3f, \"steal_ms\": %.3f, "
               "\"steal_over_forkjoin\": %.4f},\n"
               "    \"skewed\": {\"forkjoin_ms\": %.3f, \"steal_ms\": %.3f, "
               "\"steal_over_forkjoin\": %.4f},\n"
               "    \"uniform_within_5pct\": %s\n  },\n"
               "  \"server\": {\n"
               "    \"nodes\": %u, \"shards\": %u, \"disk_latency_us\": %u,\n"
               "    \"total_buffer_kb\": %zu, \"conns\": %zu,\n"
               "    \"thetas\": [\n",
               kMicroN, kMicroChunk, kMicroWidth, uniform.forkjoin_ms,
               uniform.steal_ms, uniform_ratio, skewed.forkjoin_ms,
               skewed.steal_ms, skewed_ratio,
               uniform_ratio <= 1.05 ? "true" : "false", nodes, kShards,
               latency_us, total_buffer >> 10, conns);
  for (size_t i = 0; i < results.size(); ++i) {
    const ThetaResult& r = results[i];
    auto dump_run = [&](const char* name, const ServerRun& run, bool last) {
      std::fprintf(f, "        \"%s\": {\"saturation_qps\": %.1f, ", name,
                   run.saturation_qps);
      std::fprintf(f, "\"steals\": %llu, \"splits\": %llu, \"rates\": [",
                   (unsigned long long)run.steals,
                   (unsigned long long)run.splits);
      for (size_t j = 0; j < run.points.size(); ++j) {
        const RatePoint& p = run.points[j];
        std::fprintf(f,
                     "{\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
                     "\"rejected\": %zu, \"p50_us\": %.1f, \"p95_us\": %.1f, "
                     "\"p99_us\": %.1f}%s",
                     p.offered_qps, p.achieved_qps, p.rejected, p.p50_us,
                     p.p95_us, p.p99_us, j + 1 < run.points.size() ? ", " : "");
      }
      std::fprintf(f, "]");
      if (!run.workers.empty()) {
        std::fprintf(f, ", \"workers\": [");
        for (size_t j = 0; j < run.workers.size(); ++j) {
          const WorkerLoad& w = run.workers[j];
          std::fprintf(f,
                       "{\"tag\": \"%s\", \"busy_frac\": %.4f, \"tasks\": %llu, "
                       "\"steals\": %llu}%s",
                       w.tag.c_str(), w.busy_frac, (unsigned long long)w.tasks,
                       (unsigned long long)w.steals,
                       j + 1 < run.workers.size() ? ", " : "");
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "}%s\n", last ? "" : ",");
    };
    std::fprintf(f, "      {\"theta\": %.2f,\n", r.theta);
    dump_run("baseline", r.baseline, false);
    dump_run("steal", r.steal, true);
    std::fprintf(f, "      }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "    ]\n  },\n  \"gate_theta\": 1.2,\n"
               "  \"saturation_ratio\": %.3f,\n  \"p99_ratio\": %.3f,\n"
               "  \"gate_2x\": %s\n}\n",
               sat_ratio, p99_ratio, gate ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_sched.json\n");
  return gate && uniform_ratio <= 1.05 ? 0 : 1;
}
