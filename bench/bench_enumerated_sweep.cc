// Reproduces the §6.2 methodology: "We tested DP and DPS using query
// structures listed through Figure 4(a) to 4(h) by enumerating all
// possible patterns with different labels." We sample random label
// assignments per shape (full enumeration over 33 labels is beyond a
// bench run), skip the pathological assignments whose estimated results
// exceed a budget (as any harness must), and report the distribution of
// DP-vs-DPS elapsed time and modeled I/O.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "opt/dp_optimizer.h"
#include "workload/datasets.h"
#include "workload/patterns.h"

namespace {

using namespace fgpm;

struct ShapeSpec {
  const char* name;
  int nodes;
  int extra_edges;  // beyond the spanning tree
};

}  // namespace

int main() {
  double scale = workload::BenchScaleFromEnv();
  bench::PrintHeader(
      "Section 6.2 — enumerated random-label pattern sweep, DP vs DPS",
      "per-shape aggregates over sampled label assignments",
      scale);

  auto specs = workload::PaperDatasets();
  Graph g = workload::LoadDataset(specs[2], scale);  // 60M
  std::printf("dataset %s: %zu nodes\n\n", specs[2].name.c_str(),
              g.NumNodes());
  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }

  const ShapeSpec shapes[] = {
      {"3-node path (4a)", 3, 0},
      {"4-node path (4c)", 4, 0},
      {"4-node tree (4d)", 4, 0},
      {"4-node graph (4e)", 4, 1},
      {"5-node graph (4h)", 5, 1},
  };
  const int kSamples = 25;
  const double kEstBudget = 5e6;

  std::printf("%-18s %6s %6s | %9s %9s %7s | %7s %7s\n", "shape", "run",
              "skip", "DP(ms)", "DPS(ms)", "t-ratio", "io-rat", "dps-win");
  for (const ShapeSpec& shape : shapes) {
    auto patterns = workload::RandomPatterns(
        g, kSamples, shape.nodes, shape.extra_edges,
        0xfeed + shape.nodes * 31 + shape.extra_edges);
    double dp_ms = 0, dps_ms = 0;
    uint64_t dp_pages = 0, dps_pages = 0;
    int run = 0, skipped = 0, dps_wins = 0;
    for (const auto& p : patterns) {
      auto plan = OptimizeDp(p, (*matcher)->db().catalog());
      if (!plan.ok() || plan->estimated_cost > kEstBudget) {
        ++skipped;
        continue;
      }
      auto dp = bench::RunEngine(**matcher, p, Engine::kDp);
      auto dps = bench::RunEngine(**matcher, p, Engine::kDps);
      if (dp.ms < 0 || dps.ms < 0) {
        ++skipped;
        continue;
      }
      ++run;
      dp_ms += dp.ms;
      dps_ms += dps.ms;
      dp_pages += dp.pages;
      dps_pages += dps.pages;
      if (dps.ms <= dp.ms) ++dps_wins;
    }
    std::printf("%-18s %6d %6d | %9.1f %9.1f %7.2f | %7.2f %6d/%d\n",
                shape.name, run, skipped, dp_ms, dps_ms,
                dps_ms > 0 ? dp_ms / dps_ms : 0.0,
                dps_pages ? double(dp_pages) / double(dps_pages) : 0.0,
                dps_wins, run);
  }
  std::printf("\n(skips = label assignments whose DP cost estimate exceeds "
              "%.0fM page-units)\n", kEstBudget / 1e6);
  return 0;
}
