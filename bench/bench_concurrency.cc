// Multi-threaded query-throughput benchmark for the de-serialized read
// path (ISSUE 2): N worker threads issue queries against one shared
// GraphDatabase, so all contention lands on the shared storage
// structures — the buffer pool (sharded vs. the single-mutex
// configuration; a 1-shard pool is behaviourally identical to the
// pre-sharding pool) and the getCenters code cache (striped vs. one
// stripe).
//
// Workloads:
//  * reach — point reachability queries u ~> v answered from the
//    disk-resident graph codes (two getCenters probes + one code
//    intersection, Example 3.1). The code cache is off so every probe
//    is a real B+-tree descent through the pool, and the DiskManager
//    simulates 50 us of device latency per page read (the paper's
//    tables are disk-resident; the instantaneous in-memory store would
//    hide the miss path entirely). The database is built once, saved,
//    and reopened per configuration, so every pool starts cold; "hot"
//    sizes the pool to ~94% of the probe working set and pre-warms it,
//    "cold" gives it half the working set and no warmup. The
//    single-latch pool blocks every reader for the full device latency
//    on each miss, while the sharded pool keeps hits flowing and
//    overlaps misses — this is the headline ">= 2x aggregate
//    throughput at 8 threads" measurement.
//  * pattern — full DPS pattern queries on a fully resident pool (no
//    simulated latency). CPU-bound, so on a single-core host the
//    configurations tie by construction; the cells exist to show the
//    sharded path costs nothing when there is no I/O to overlap, and
//    to track scaling on multi-core hosts.
//  * cache — the reach probes with the code cache on (striped vs one
//    stripe), fully resident pool.
//
// Results go to BENCH_concurrency.json so the perf trajectory is
// machine-trackable from this PR onward.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sorted_vector.h"
#include "common/timer.h"
#include "core/graph_matcher.h"
#include "exec/engine.h"
#include "graph/generators.h"

namespace fgpm {
namespace {

constexpr uint32_t kDiskLatencyUs = 50;
constexpr size_t kBigPool = size_t{64} << 20;
const char* kDbFile = "bench_concurrency.fgpm";

struct Cell {
  std::string workload;   // reach | pattern | cache
  std::string pool_mode;  // hot | cold | resident
  std::string config;     // serial | sharded
  unsigned threads = 0;
  size_t shards = 0;
  size_t stripes = 0;
  uint32_t disk_latency_us = 0;
  uint64_t queries = 0;
  double elapsed_ms = 0;
  double qps = 0;
  double hit_rate = 0;  // buffer-pool hit rate over the window
};

Graph MakeLayeredGraph() {
  // Three-layer DAG (sources -> middles -> targets); middles become the
  // 2-hop centers, so probes and pattern queries do real W-table and
  // R-join index work.
  constexpr uint32_t kSources = 4000, kTargets = 4000, kMiddles = 400;
  Graph g;
  Rng rng(7);
  std::vector<NodeId> src, mid, tgt;
  for (uint32_t i = 0; i < kSources; ++i) src.push_back(g.AddNode("L0"));
  for (uint32_t i = 0; i < kTargets; ++i) tgt.push_back(g.AddNode("L1"));
  for (uint32_t i = 0; i < kMiddles; ++i) mid.push_back(g.AddNode("L2"));
  for (NodeId s : src) {
    for (int k = 0; k < 6; ++k) {
      Status st = g.AddEdge(s, mid[rng.NextBounded(kMiddles)]);
      (void)st;
    }
  }
  for (NodeId m : mid) {
    for (int k = 0; k < 40; ++k) {
      Status st = g.AddEdge(m, tgt[rng.NextBounded(kTargets)]);
      (void)st;
    }
  }
  g.Finalize();
  return g;
}

// serial = the pre-sharding single-mutex pool, faithfully: one shard
// AND the latch held across disk reads; one cache stripe.
std::unique_ptr<GraphDatabase> OpenDb(bool serial, size_t pool_bytes,
                                      size_t cache_capacity,
                                      uint32_t latency_us) {
  GraphDatabaseOptions opts;
  opts.buffer_pool_bytes = pool_bytes;
  opts.buffer_pool_shards = serial ? 1 : 8;
  opts.code_cache_stripes = serial ? 1 : 8;
  opts.buffer_pool_latch_across_io = serial;
  opts.code_cache_capacity = cache_capacity;
  auto db = GraphDatabase::Open(kDbFile, opts);
  FGPM_CHECK(db.ok());
  (*db)->buffer_pool()->disk()->set_simulated_read_latency_us(latency_us);
  return std::move(*db);
}

// Fixed-window throughput driver: spawns `threads` workers running
// `one_query` in a loop until the deadline, returns aggregate q/s.
template <typename Fn>
Cell RunWindow(unsigned threads, double window_ms, GraphDatabase* db,
               Fn&& one_query) {
  std::atomic<bool> stop{false};
  std::vector<uint64_t> done(threads, 0);
  std::vector<std::thread> workers;
  BufferPoolStats before = db->buffer_pool()->stats();
  WallTimer timer;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0x5eed + 31 * t);
      while (!stop.load(std::memory_order_relaxed)) {
        one_query(rng);
        ++done[t];
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(window_ms)));
  stop.store(true);
  for (auto& w : workers) w.join();
  Cell c;
  c.threads = threads;
  c.elapsed_ms = timer.ElapsedMillis();
  for (uint64_t d : done) c.queries += d;
  c.qps = 1000.0 * static_cast<double>(c.queries) / c.elapsed_ms;
  BufferPoolStats after = db->buffer_pool()->stats();
  uint64_t hits = after.hits - before.hits;
  uint64_t misses = after.misses - before.misses;
  if (hits + misses > 0) {
    c.hit_rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  c.shards = db->buffer_pool()->num_shards();
  c.stripes = db->code_cache_stripes();
  return c;
}

// getCenters with retry: a heavily undersized shard can transiently
// have every frame pinned by in-flight loads; frames free as soon as
// other workers finish, so a client simply tries again.
void GetCodesRetry(const GraphDatabase& db, NodeId v, LabelId l,
                   GraphCodeRecord* rec) {
  Status s;
  do {
    s = db.GetCodes(v, l, rec);
    if (s.code() == StatusCode::kResourceExhausted) std::this_thread::yield();
  } while (s.code() == StatusCode::kResourceExhausted);
  FGPM_CHECK(s.ok());
}

// One reachability query: two disk-resident getCenters probes plus the
// adaptive code intersection (Example 3.1).
void ReachQuery(const Graph& g, const GraphDatabase& db, Rng& rng) {
  NodeId u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
  NodeId v = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
  GraphCodeRecord ru, rv;
  GetCodesRetry(db, u, g.label_of(u), &ru);
  GetCodesRetry(db, v, g.label_of(v), &rv);
  volatile bool reach = SortedIntersects(ru.out, rv.in);
  (void)reach;
}

void WarmReach(const Graph& g, const GraphDatabase& db, int passes) {
  GraphCodeRecord rec;
  for (int pass = 0; pass < passes; ++pass) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      FGPM_CHECK(db.GetCodes(v, g.label_of(v), &rec).ok());
    }
  }
}

}  // namespace
}  // namespace fgpm

int main(int argc, char** argv) {
  using namespace fgpm;
  // Short mode for smoke runs: bench_concurrency --window-ms=150
  double window_ms = 1000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--window-ms=", 0) == 0) {
      window_ms = std::stod(arg.substr(12));
    }
  }

  Graph g = MakeLayeredGraph();
  const std::vector<unsigned> kThreads = {1, 2, 4, 8};
  std::vector<Cell> cells;

  // Build once (serial config; construction is not what is measured),
  // save, and reopen per configuration below so pools start cold. This
  // first matcher also serves the serial pattern cells.
  GraphDatabaseOptions build_opts;
  build_opts.buffer_pool_bytes = kBigPool;
  build_opts.buffer_pool_shards = 1;
  build_opts.code_cache_stripes = 1;
  build_opts.buffer_pool_latch_across_io = true;
  build_opts.code_cache_capacity = 16384;
  auto matcher_serial = GraphMatcher::Create(&g, build_opts);
  FGPM_CHECK(matcher_serial.ok());
  FGPM_CHECK((*matcher_serial)->db().Save(kDbFile).ok());

  // The reach probe working set: distinct pages a full sweep of
  // getCenters touches, counted as cold misses on a fresh open with a
  // pool big enough to never evict.
  size_t working_set = 0;
  {
    auto db = OpenDb(true, kBigPool, /*cache=*/0, /*latency_us=*/0);
    WarmReach(g, *db, 1);
    working_set = db->buffer_pool()->stats().misses;
  }
  const size_t kHotFrames =
      std::max<size_t>(32, working_set - working_set / 16);  // ~94% of it
  const size_t kColdFrames = std::max<size_t>(32, working_set / 2);
  std::printf(
      "# reach working set: %zu pages; hot pool %zu frames, cold pool %zu "
      "frames, disk latency %u us\n",
      working_set, kHotFrames, kColdFrames, kDiskLatencyUs);

  // --- reach: hot and cold pool, serial vs sharded --------------------
  for (const char* pool_mode : {"hot", "cold"}) {
    bool hot = std::string(pool_mode) == "hot";
    size_t frames = hot ? kHotFrames : kColdFrames;
    for (const char* config : {"serial", "sharded"}) {
      bool serial = std::string(config) == "serial";
      auto db = OpenDb(serial, frames * kPageSize, /*cache=*/0, kDiskLatencyUs);
      if (hot) WarmReach(g, *db, 2);  // cold runs straight from the open
      for (unsigned t : kThreads) {
        Cell c = RunWindow(t, window_ms, db.get(),
                           [&](Rng& rng) { ReachQuery(g, *db, rng); });
        c.workload = "reach";
        c.pool_mode = pool_mode;
        c.config = config;
        c.disk_latency_us = kDiskLatencyUs;
        std::printf(
            "reach   %-4s %-7s t=%u  shards=%zu  hit=%.3f  %9.0f q/s\n",
            pool_mode, config, t, c.shards, c.hit_rate, c.qps);
        std::fflush(stdout);
        cells.push_back(c);
      }
    }
  }

  // --- pattern: fully resident pool, no simulated latency -------------
  GraphDatabaseOptions sharded_opts = build_opts;
  sharded_opts.buffer_pool_shards = 8;
  sharded_opts.code_cache_stripes = 8;
  auto matcher_sharded = GraphMatcher::Create(&g, sharded_opts);
  FGPM_CHECK(matcher_sharded.ok());
  for (const char* config : {"serial", "sharded"}) {
    GraphMatcher& m = std::string(config) == "serial" ? **matcher_serial
                                                      : **matcher_sharded;
    GraphDatabase& db = m.db();
    db.set_code_cache_enabled(false);
    Pattern pattern = *Pattern::Parse("L0->L2; L2->L1");
    auto plan = m.MakePlan(pattern, Engine::kDps);
    FGPM_CHECK(plan.ok());
    for (unsigned t : kThreads) {
      Cell c = RunWindow(t, window_ms, &db, [&](Rng&) {
        thread_local Executor* exec = nullptr;
        if (exec == nullptr) {
          static thread_local Executor owned(&db, ExecOptions{.num_threads = 1});
          exec = &owned;
        }
        auto res = exec->Execute(pattern, *plan);
        FGPM_CHECK(res.ok());
        FGPM_CHECK(res->stats.result_rows > 0);
      });
      c.workload = "pattern";
      c.pool_mode = "resident";
      c.config = config;
      std::printf("pattern res  %-7s t=%u  shards=%zu  %13.1f q/s\n", config,
                  t, c.shards, c.qps);
      std::fflush(stdout);
      cells.push_back(c);
    }
  }

  // --- cache: reach probes with the striped code cache on -------------
  for (const char* config : {"serial", "sharded"}) {
    bool serial = std::string(config) == "serial";
    auto db = OpenDb(serial, kBigPool, /*cache=*/16384, /*latency_us=*/0);
    WarmReach(g, *db, 2);
    Cell c = RunWindow(8, window_ms, db.get(),
                       [&](Rng& rng) { ReachQuery(g, *db, rng); });
    c.workload = "cache";
    c.pool_mode = "resident";
    c.config = config;
    std::printf("cache   res  %-7s t=8  stripes=%zu  %10.0f q/s\n", config,
                c.stripes, c.qps);
    cells.push_back(c);
  }
  std::remove(kDbFile);

  auto find_qps = [&](const char* workload, const char* pool_mode,
                      const char* config, unsigned t) {
    for (const Cell& c : cells) {
      if (c.workload == workload && c.pool_mode == pool_mode &&
          c.config == config && c.threads == t) {
        return c.qps;
      }
    }
    return 0.0;
  };
  double hot8 = find_qps("reach", "hot", "sharded", 8) /
                find_qps("reach", "hot", "serial", 8);
  double cold8 = find_qps("reach", "cold", "sharded", 8) /
                 find_qps("reach", "cold", "serial", 8);
  double pattern8 = find_qps("pattern", "resident", "sharded", 8) /
                    find_qps("pattern", "resident", "serial", 8);
  double cache8 = find_qps("cache", "resident", "sharded", 8) /
                  find_qps("cache", "resident", "serial", 8);
  std::printf(
      "\nsharded/serial aggregate throughput at 8 threads: reach-hot %.2fx, "
      "reach-cold %.2fx, pattern %.2fx, cache-on %.2fx\n",
      hot8, cold8, pattern8, cache8);

  FILE* f = std::fopen("BENCH_concurrency.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"concurrency\",\n  \"window_ms\": %.0f,\n"
               "  \"reach_working_set_pages\": %zu,\n  \"hot_frames\": %zu,\n"
               "  \"cold_frames\": %zu,\n",
               window_ms, working_set, kHotFrames, kColdFrames);
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"pool\": \"%s\", \"config\": \"%s\", "
        "\"threads\": %u, \"shards\": %zu, \"stripes\": %zu, "
        "\"disk_latency_us\": %u, \"queries\": %llu, \"elapsed_ms\": %.2f, "
        "\"hit_rate\": %.4f, \"qps\": %.1f}%s\n",
        c.workload.c_str(), c.pool_mode.c_str(), c.config.c_str(), c.threads,
        c.shards, c.stripes, c.disk_latency_us,
        static_cast<unsigned long long>(c.queries), c.elapsed_ms, c.hit_rate,
        c.qps, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"speedup_sharded_vs_serial_t8\": {\"reach_hot\": %.2f, "
               "\"reach_cold\": %.2f, \"pattern_resident\": %.2f, "
               "\"cache_on\": %.2f}\n}\n",
               hot8, cold8, pattern8, cache8);
  std::fclose(f);
  std::printf("wrote BENCH_concurrency.json\n");
  return 0;
}
