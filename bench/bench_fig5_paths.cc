// Reproduces Figure 5(a): TSD vs INT-DP vs DP elapsed time on the nine
// path patterns P1-P9 over a small XMark-derived DAG (the paper uses
// factor 0.01, ~16K nodes, because TSD cannot handle large graphs).
// Expected shape: DP < INT-DP << TSD, with TSD behind by orders of
// magnitude on at least some patterns.
#include <cstdio>

#include "bench/bench_util.h"
#include "graph/generators.h"
#include "workload/patterns.h"

int main() {
  using namespace fgpm;
  // Figure 5's dataset is fixed at the paper's own small factor — the
  // global bench scale does not shrink it further (it is already tiny).
  gen::XMarkOptions opts;
  opts.factor = 0.01;
  opts.acyclic = true;  // TSD supports DAGs only, as in the paper
  Graph g = gen::XMarkLike(opts);

  bench::PrintHeader(
      "Figure 5(a) — TSD vs INT-DP vs DP, 9 path patterns",
      "elapsed ms per engine; paper shape: DP < INT-DP << TSD (log scale)",
      1.0);
  std::printf("dataset: %zu nodes, %zu edges (DAG)\n\n", g.NumNodes(),
              g.NumEdges());

  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }

  std::printf("%-4s %10s | %12s %12s %12s\n", "P", "matches", "TSD(ms)",
              "INT-DP(ms)", "DP(ms)");
  auto patterns = workload::XmarkPathPatterns();
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto tsd = bench::RunEngine(**matcher, patterns[i], Engine::kTsd);
    auto intdp = bench::RunEngine(**matcher, patterns[i], Engine::kIntDp);
    auto dp = bench::RunEngine(**matcher, patterns[i], Engine::kDp);
    std::printf("P%-3zu %10zu | %12.2f %12.2f %12.2f\n", i + 1, dp.rows,
                tsd.ms, intdp.ms, dp.ms);
  }
  return 0;
}
