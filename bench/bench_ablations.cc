// Ablations over the design choices the paper calls out in Section 3:
//   (1) the getCenters working cache (Section 3.3) on vs off;
//   (2) shared multi-semijoin scans (Remark 3.1) vs one scan per
//       semijoin (plans rewritten to split filter groups);
//   (3) buffer-pool size sweep (the paper fixes 1 MiB);
//   (4) pruned 2-hop builder vs exact greedy set cover (cover sizes, on
//       a small graph);
//   (5) transitive-reduction pattern rewrite on a pattern with a
//       redundant edge.
#include <cstdio>

#include "bench/bench_util.h"
#include "exec/engine.h"
#include "graph/generators.h"
#include "opt/dps_optimizer.h"
#include "reach/grail.h"
#include "reach/interval.h"
#include "reach/two_hop.h"
#include "workload/datasets.h"
#include "workload/patterns.h"

namespace fgpm {
namespace {

// Rewrites multi-item filter steps into one filter step per semijoin
// (disables Remark 3.1 sharing).
Plan SplitFilters(const Plan& plan) {
  Plan out;
  out.estimated_cost = plan.estimated_cost;
  for (const PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kFilter && s.filters.size() > 1) {
      for (const FilterItem& item : s.filters) {
        out.steps.push_back(PlanStep::Filter({item}));
      }
    } else {
      out.steps.push_back(s);
    }
  }
  return out;
}

}  // namespace
}  // namespace fgpm

int main() {
  using namespace fgpm;
  double scale = workload::BenchScaleFromEnv();
  bench::PrintHeader("Ablations — design choices of Section 3",
                     "cache, shared scans, buffer size, cover builder, "
                     "pattern rewrite",
                     scale);

  auto specs = workload::PaperDatasets();
  Graph g = workload::LoadDataset(specs[2], scale);  // 60M, mid-size
  std::printf("dataset %s: %zu nodes\n", specs[2].name.c_str(), g.NumNodes());

  auto patterns = workload::XmarkGraphPatterns4();

  // --- (1) working cache on/off -------------------------------------------
  {
    auto matcher = GraphMatcher::Create(&g);
    if (!matcher.ok()) return 1;
    std::printf("\n(1) getCenters working cache (Section 3.3), DPS plans\n");
    std::printf("%-4s | %12s %12s | %14s %14s\n", "Q", "on(ms)", "off(ms)",
                "on(pages)", "off(pages)");
    int qi = 1;
    for (const auto& p : patterns) {
      (*matcher)->db().set_code_cache_enabled(true);
      auto on = bench::RunEngine(**matcher, p, Engine::kDps);
      (*matcher)->db().set_code_cache_enabled(false);
      auto off = bench::RunEngine(**matcher, p, Engine::kDps);
      (*matcher)->db().set_code_cache_enabled(true);
      std::printf("Q%-3d | %12.2f %12.2f | %14llu %14llu\n", qi++, on.ms,
                  off.ms, (unsigned long long)on.pages,
                  (unsigned long long)off.pages);
    }
  }

  // --- (2) shared semijoin scans vs split ----------------------------------
  {
    auto matcher = GraphMatcher::Create(&g);
    if (!matcher.ok()) return 1;
    Executor exec(&(*matcher)->db());
    std::printf("\n(2) shared multi-semijoin scans (Remark 3.1) vs split\n");
    std::printf("(tree patterns T4-T9: several conditions probe one column)\n");
    std::printf("%-4s | %12s %12s | %12s %12s\n", "T", "shared(ms)",
                "split(ms)", "shared(code)", "split(code)");
    auto trees = workload::XmarkTreePatterns();
    std::vector<Pattern> shared_patterns(trees.begin() + 3, trees.end());
    int qi = 4;
    for (const auto& p : shared_patterns) {
      auto plan = OptimizeDps(p, (*matcher)->db().catalog());
      if (!plan.ok()) continue;
      Plan split = SplitFilters(*plan);
      WallTimer t1;
      auto shared_r = exec.Execute(p, *plan);
      double shared_ms = t1.ElapsedMillis();
      WallTimer t2;
      auto split_r = exec.Execute(p, split);
      double split_ms = t2.ElapsedMillis();
      if (!shared_r.ok() || !split_r.ok()) continue;
      std::printf("T%-3d | %12.2f %12.2f | %12llu %12llu\n", qi++, shared_ms,
                  split_ms,
                  (unsigned long long)shared_r->stats.operators.code_fetches,
                  (unsigned long long)split_r->stats.operators.code_fetches);
    }
  }

  // --- (3) buffer pool size sweep ------------------------------------------
  {
    std::printf("\n(3) buffer pool size (paper fixes 1 MiB)\n");
    std::printf("%-10s | %12s %14s\n", "pool", "DPS(ms)", "cold reads");
    for (size_t kb : {256, 1024, 4096, 16384}) {
      GraphDatabaseOptions opts;
      opts.buffer_pool_bytes = kb * 1024;
      auto matcher = GraphMatcher::Create(&g, opts);
      if (!matcher.ok()) return 1;
      double total_ms = 0;
      uint64_t reads = 0;
      for (const auto& p : patterns) {
        auto r = (*matcher)->Match(p, {.engine = Engine::kDps});
        if (!r.ok()) continue;
        total_ms += r->stats.elapsed_ms;
        reads += r->stats.io.page_reads;
      }
      std::printf("%6zu KiB | %12.2f %14llu\n", kb, total_ms,
                  (unsigned long long)reads);
    }
  }

  // --- (4) 2-hop cover builders --------------------------------------------
  {
    std::printf("\n(4) 2-hop cover: pruned-BFS builder vs exact greedy "
                "(small DAG)\n");
    Graph small = gen::RandomDag(300, 2.0, 5, 99);
    WallTimer tp;
    TwoHopLabeling pruned = BuildTwoHopPruned(small);
    double pruned_ms = tp.ElapsedMillis();
    WallTimer tg;
    TwoHopLabeling greedy = BuildTwoHopGreedy(small);
    double greedy_ms = tg.ElapsedMillis();
    std::printf("%-8s %14s %12s\n", "builder", "cover size", "build ms");
    std::printf("%-8s %14llu %12.2f\n", "pruned",
                (unsigned long long)pruned.CoverSize(), pruned_ms);
    std::printf("%-8s %14llu %12.2f\n", "greedy",
                (unsigned long long)greedy.CoverSize(), greedy_ms);
  }

  // --- (6) reachability index comparison ------------------------------------
  {
    std::printf("\n(6) reachability index comparison (query cost per 1M "
                "random pairs; 2-hop is what drives the R-join index)\n");
    Graph g2 = gen::RandomDag(20000, 2.0, 5, 77);
    WallTimer b1;
    TwoHopLabeling hop = BuildTwoHopPruned(g2);
    double hop_build = b1.ElapsedMillis();
    WallTimer b2;
    MultiIntervalIndex intervals(g2);
    double int_build = b2.ElapsedMillis();
    WallTimer b3;
    GrailIndex grail(g2, 3, 78);
    double grail_build = b3.ElapsedMillis();

    const int kQ = 1000000;
    auto time_queries = [&](auto& idx) {
      Rng rng(79);
      WallTimer t;
      uint64_t hits = 0;
      for (int i = 0; i < kQ; ++i) {
        NodeId u = static_cast<NodeId>(rng.NextBounded(g2.NumNodes()));
        NodeId v = static_cast<NodeId>(rng.NextBounded(g2.NumNodes()));
        hits += idx.Reaches(u, v);
      }
      return std::make_pair(t.ElapsedMillis(), hits);
    };
    auto [hop_ms, hop_hits] = time_queries(hop);
    auto [int_ms, int_hits] = time_queries(intervals);
    auto [grail_ms, grail_hits] = time_queries(grail);
    std::printf("%-14s %12s %12s %10s\n", "index", "build ms", "query ms",
                "positives");
    std::printf("%-14s %12.1f %12.1f %10llu\n", "2-hop", hop_build, hop_ms,
                (unsigned long long)hop_hits);
    std::printf("%-14s %12.1f %12.1f %10llu\n", "tree-cover", int_build,
                int_ms, (unsigned long long)int_hits);
    std::printf("%-14s %12.1f %12.1f %10llu (dfs fallbacks %llu)\n",
                "GRAIL(k=3)", grail_build, grail_ms,
                (unsigned long long)grail_hits,
                (unsigned long long)grail.dfs_fallbacks());
  }

  // --- (5) transitive reduction rewrite -------------------------------------
  {
    auto matcher = GraphMatcher::Create(&g);
    if (!matcher.ok()) return 1;
    std::printf("\n(5) transitive-reduction rewrite (Section 2 note)\n");
    auto p = Pattern::Parse(
        "site->regions; regions->region; site->region; region->item");
    if (p.ok()) {
      auto plain = bench::RunEngine(**matcher, *p, Engine::kDps);
      WallTimer t;
      auto reduced_r =
          (*matcher)->Match(*p, {.engine = Engine::kDps,
                                 .transitive_reduction = true});
      double reduced_ms = t.ElapsedMillis();
      std::printf("%-22s %12s %12s %10s\n", "variant", "ms", "matches",
                  "edges");
      std::printf("%-22s %12.2f %12zu %10zu\n", "4 edges (as written)",
                  plain.ms, plain.rows, p->num_edges());
      if (reduced_r.ok()) {
        std::printf("%-22s %12.2f %12zu %10zu\n", "3 edges (reduced)",
                    reduced_ms, reduced_r->rows.size(),
                    p->TransitiveReduction().num_edges());
      }
    }
  }
  return 0;
}
