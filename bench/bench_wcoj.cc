// Binary R-joins vs WCOJ vs hybrid join strategies on cyclic patterns
// (PR 6 tentpole): triangle, 4-clique, 5-cycle and diamond pattern
// graphs over a scale-free (DAG: preferential attachment points new ->
// old) and an Erdos-Renyi graph (cyclic: directed-cycle patterns only
// match inside SCCs, which is exactly where late select pruning hurts
// binary plans and per-bind k-way intersection pays off).
//
// For each (graph, pattern, threads in {1,4,8}) cell the same pattern
// runs under three plans over ONE shared database build:
//   binary — OptimizeDps with bind-moves disabled (the pre-PR planner);
//   wcoj   — the pure scan+bind plan from MakeWcojPlan;
//   hybrid — OptimizeDps free to mix bind-moves with R-join moves.
// Result sets must be identical across strategies (sorted compare; row
// ORDER may differ because the plans differ). Times are best-of-N of
// the executor's elapsed_ms.
//
// An acyclic fig5-style path workload rides along as the no-regression
// guard: hybrid's bind-gating must produce the IDENTICAL plan binary
// produces (checked structurally), so acyclic suites cannot regress.
//
// Results go to BENCH_wcoj.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "exec/engine.h"
#include "gdb/database.h"
#include "graph/generators.h"
#include "opt/dps_optimizer.h"
#include "opt/wcoj_planner.h"

namespace fgpm {
namespace {

struct PatternSpec {
  std::string name;
  std::string text;
};

struct Cell {
  unsigned threads = 0;
  double binary_ms = 0;
  double wcoj_ms = 0;
  double hybrid_ms = 0;
  uint64_t rows = 0;
  uint64_t kway_probes = 0;   // wcoj run
  uint64_t kway_hits = 0;     // wcoj run
  uint64_t reach_pruned = 0;  // wcoj run
  double speedup() const {
    double best = std::min(wcoj_ms, hybrid_ms);
    return best > 0 ? binary_ms / best : 0;
  }
};

struct PatternResult {
  std::string graph, pattern, text;
  std::vector<Cell> cells;
};

double BestOf(Executor& exec, const Pattern& p, const Plan& plan, int reps,
              MatchResult* out) {
  return bench::BestOfMs(reps, [&](int rep) {
    auto r = exec.Execute(p, plan);
    FGPM_CHECK(r.ok());
    double ms = r->stats.elapsed_ms;
    if (rep == 0) *out = std::move(*r);
    return ms;
  });
}

PatternResult RunPattern(const std::string& graph_name, GraphDatabase& db,
                         const PatternSpec& spec, int reps) {
  PatternResult out;
  out.graph = graph_name;
  out.pattern = spec.name;
  out.text = spec.text;

  auto p = Pattern::Parse(spec.text);
  FGPM_CHECK(p.ok());
  CostParams params;
  params.factorized = true;

  auto binary = OptimizeDps(*p, db.catalog(), params, JoinStrategy::kBinary);
  auto wcoj = MakeWcojPlan(*p, db.catalog(), params);
  auto hybrid = OptimizeDps(*p, db.catalog(), params, JoinStrategy::kHybrid);
  FGPM_CHECK(binary.ok() && wcoj.ok() && hybrid.ok());

  std::printf("  %s (%s)\n", spec.name.c_str(), spec.text.c_str());
  for (unsigned threads : {1u, 4u, 8u}) {
    Executor exec(&db, ExecOptions{.num_threads = threads});
    Cell cell;
    cell.threads = threads;
    MatchResult rb, rw, rh;
    cell.binary_ms = BestOf(exec, *p, *binary, reps, &rb);
    cell.wcoj_ms = BestOf(exec, *p, *wcoj, reps, &rw);
    cell.hybrid_ms = BestOf(exec, *p, *hybrid, reps, &rh);
    cell.rows = rb.rows.size();
    cell.kway_probes = rw.stats.operators.kway_intersect_probes;
    cell.kway_hits = rw.stats.operators.kway_intersect_hits;
    cell.reach_pruned = rw.stats.operators.wcoj_reach_pruned;
    // Row-identical across strategies: the three plans bind the same
    // pattern, so the result SETS must agree exactly (order may differ
    // between plans; within one plan it is deterministic).
    rb.SortRows();
    rw.SortRows();
    rh.SortRows();
    FGPM_CHECK(rw.rows == rb.rows);
    FGPM_CHECK(rh.rows == rb.rows);
    std::printf(
        "    %u thread%s: binary %9.2f ms, wcoj %9.2f ms, hybrid %9.2f ms "
        " %5.2fx  (%llu rows)\n",
        threads, threads == 1 ? " " : "s", cell.binary_ms, cell.wcoj_ms,
        cell.hybrid_ms, cell.speedup(), (unsigned long long)cell.rows);
    std::fflush(stdout);
    out.cells.push_back(cell);
  }
  return out;
}

// The no-regression guard: on an acyclic pattern the hybrid search must
// degenerate to the binary search (bind-moves are gated on a cyclic
// core), so fig5/fig6-style suites see byte-identical plans.
bool AcyclicPlansIdentical(GraphDatabase& db) {
  CostParams params;
  params.factorized = true;
  for (const char* text :
       {"L0->L1; L1->L2; L2->L3; L3->L4", "L0->L1; L0->L2; L1->L3; L1->L4"}) {
    auto p = Pattern::Parse(text);
    FGPM_CHECK(p.ok());
    auto binary = OptimizeDps(*p, db.catalog(), params, JoinStrategy::kBinary);
    auto hybrid = OptimizeDps(*p, db.catalog(), params, JoinStrategy::kHybrid);
    FGPM_CHECK(binary.ok() && hybrid.ok());
    if (binary->steps.size() != hybrid->steps.size()) return false;
    for (size_t i = 0; i < binary->steps.size(); ++i) {
      const PlanStep&a = binary->steps[i], &b = hybrid->steps[i];
      if (a.kind != b.kind || a.edge != b.edge ||
          a.bound_is_source != b.bound_is_source ||
          a.scan_node != b.scan_node) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace
}  // namespace fgpm

int main(int argc, char** argv) {
  using namespace fgpm;
  int reps = 3;
  uint64_t seed = 0xc0de;
  // Sizes are modest on purpose: the ER cyclic patterns are output-bound
  // (the diamond alone yields ~2.4M rows at 1200 nodes), so larger graphs
  // mostly measure result materialization, not join strategy.
  uint32_t sf_nodes = 4000, er_nodes = 1200;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
    if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
    if (arg.rfind("--sf-nodes=", 0) == 0)
      sf_nodes = std::stoul(arg.substr(11));
    if (arg.rfind("--er-nodes=", 0) == 0)
      er_nodes = std::stoul(arg.substr(11));
  }

  bench::PrintHeader(
      "Join strategy A/B — binary R-joins vs WCOJ vs hybrid",
      "cyclic patterns, one shared database build per graph; identical "
      "result sets required; best-of-N elapsed ms per (strategy, threads)",
      1.0);
  std::printf("reps %d, scale-free %u nodes, erdos-renyi %u nodes\n\n", reps,
              sf_nodes, er_nodes);

  // Tournament orientations (transitivity-compatible) for the DAG
  // scale-free graph; directed-cycle orientations for the cyclic ER
  // graph, where matches are SCC-local and binary plans prune late.
  const std::vector<PatternSpec> sf_patterns = {
      {"triangle", "L0->L1; L0->L2; L1->L2"},
      {"4clique", "L0->L1; L0->L2; L0->L3; L1->L2; L1->L3; L2->L3"},
      {"5cycle", "L0->L1; L1->L2; L2->L3; L3->L4; L0->L4"},
      {"diamond", "L0->L1; L0->L2; L1->L3; L2->L3"},
  };
  const std::vector<PatternSpec> er_patterns = {
      {"triangle", "L0->L1; L1->L2; L2->L0"},
      {"4clique", "L0->L1; L1->L2; L2->L3; L3->L0; L0->L2; L1->L3"},
      {"5cycle", "L0->L1; L1->L2; L2->L3; L3->L4; L4->L0"},
      {"diamond", "L0->L1; L0->L2; L1->L3; L2->L3"},
  };

  std::vector<PatternResult> results;
  bool acyclic_identical = true;
  double clique8 = 0;  // best 4-clique speedup at 8 threads

  struct GraphCase {
    const char* name;
    Graph g;
    const std::vector<PatternSpec>* patterns;
  };
  std::vector<GraphCase> graphs;
  graphs.push_back(
      {"scale_free", gen::ScaleFree(sf_nodes, 2, 6, seed), &sf_patterns});
  graphs.push_back({"erdos_renyi",
                    gen::ErdosRenyi(er_nodes, er_nodes * 6 / 5, 6, seed + 1),
                    &er_patterns});

  for (GraphCase& gc : graphs) {
    WallTimer build_timer;
    GraphDatabase db;
    FGPM_CHECK(db.Build(gc.g).ok());
    std::printf("%s: %u nodes, %llu edges (db build %.0f ms)\n", gc.name,
                gc.g.NumNodes(), (unsigned long long)gc.g.NumEdges(),
                build_timer.ElapsedMillis());
    acyclic_identical = acyclic_identical && AcyclicPlansIdentical(db);
    for (const PatternSpec& spec : *gc.patterns) {
      results.push_back(RunPattern(gc.name, db, spec, reps));
      const PatternResult& r = results.back();
      if (r.pattern == "4clique") {
        clique8 = std::max(clique8, r.cells.back().speedup());
      }
    }
    std::printf("\n");
  }

  std::printf("4-clique speedup at 8 threads (best graph): %.2fx\n",
              clique8);
  std::printf("acyclic plans identical under hybrid: %s\n",
              acyclic_identical ? "yes" : "NO — REGRESSION");

  FILE* f = std::fopen("BENCH_wcoj.json", "w");
  FGPM_CHECK(f != nullptr);
  std::fprintf(f,
               "{\n  \"bench\": \"wcoj\",\n  \"reps\": %d,\n"
               "  \"identical_rows\": true,\n"
               "  \"acyclic_plans_identical\": %s,\n"
               "  \"fourclique_speedup_8t\": %.3f,\n  \"patterns\": [\n",
               reps, acyclic_identical ? "true" : "false", clique8);
  for (size_t i = 0; i < results.size(); ++i) {
    const PatternResult& r = results[i];
    std::fprintf(f,
                 "    {\"graph\": \"%s\", \"pattern\": \"%s\", "
                 "\"text\": \"%s\",\n     \"cells\": [\n",
                 r.graph.c_str(), r.pattern.c_str(), r.text.c_str());
    for (size_t j = 0; j < r.cells.size(); ++j) {
      const Cell& c = r.cells[j];
      std::fprintf(
          f,
          "      {\"threads\": %u, \"binary_ms\": %.3f, \"wcoj_ms\": %.3f, "
          "\"hybrid_ms\": %.3f, \"speedup\": %.3f, \"rows\": %llu,\n"
          "       \"kway_probes\": %llu, \"kway_hits\": %llu, "
          "\"reach_pruned\": %llu}%s\n",
          c.threads, c.binary_ms, c.wcoj_ms, c.hybrid_ms, c.speedup(),
          (unsigned long long)c.rows, (unsigned long long)c.kway_probes,
          (unsigned long long)c.kway_hits,
          (unsigned long long)c.reach_pruned,
          j + 1 < r.cells.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_wcoj.json\n");
  return 0;
}
