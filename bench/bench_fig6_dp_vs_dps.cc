// Reproduces Figure 6(a)-(d): DP vs DPS elapsed time on the graph
// pattern suites Q1-Q5 with |Vq| = 4 (two shape families) and |Vq| = 5
// (two shape families) over the largest dataset (the paper's 100M).
// Expected shape: DPS significantly outperforms DP on every query.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/datasets.h"
#include "workload/patterns.h"

int main() {
  using namespace fgpm;
  double scale = workload::BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 6(a-d) — DP vs DPS on graph patterns Q1-Q5 (100M dataset)",
      "elapsed ms; paper shape: DPS beats DP on every query",
      scale);

  auto specs = workload::PaperDatasets();
  Graph g = workload::LoadDataset(specs.back(), scale);  // 100M
  std::printf("dataset %s: %zu nodes, %zu edges\n", specs.back().name.c_str(),
              g.NumNodes(), g.NumEdges());

  auto matcher = GraphMatcher::Create(&g);
  if (!matcher.ok()) {
    std::fprintf(stderr, "%s\n", matcher.status().ToString().c_str());
    return 1;
  }

  struct Panel {
    const char* title;
    std::vector<Pattern> patterns;
  };
  auto q4 = workload::XmarkGraphPatterns4();
  auto q5 = workload::XmarkGraphPatterns5();
  Panel panels[] = {
      {"Figure 6(a) |Vq|=4 (shapes 4(e))",
       {q4.begin(), q4.begin() + 3}},
      {"Figure 6(b) |Vq|=4 (shapes 4(d))",
       {q4.begin() + 3, q4.end()}},
      {"Figure 6(c) |Vq|=5 (shapes 4(h))",
       {q5.begin(), q5.begin() + 3}},
      {"Figure 6(d) |Vq|=5 (shapes 4(i))",
       {q5.begin() + 3, q5.end()}},
  };

  for (const Panel& panel : panels) {
    std::printf("\n%s\n%-4s %10s | %10s %10s %7s | %12s %12s %7s\n",
                panel.title, "Q", "matches", "DP(ms)", "DPS(ms)", "t-ratio",
                "DP(pages)", "DPS(pages)", "ratio");
    int qi = 1;
    for (const auto& p : panel.patterns) {
      auto dp = bench::RunEngine(**matcher, p, Engine::kDp);
      auto dps = bench::RunEngine(**matcher, p, Engine::kDps);
      std::printf("Q%-3d %10zu | %10.2f %10.2f %7.2f | %12llu %12llu %7.2f\n",
                  qi++, dps.rows, dp.ms, dps.ms,
                  dps.ms > 0 ? dp.ms / dps.ms : 0.0,
                  (unsigned long long)dp.pages, (unsigned long long)dps.pages,
                  dps.pages ? double(dp.pages) / double(dps.pages) : 0.0);
    }
  }
  return 0;
}
